package rosa

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"privanalyzer/internal/rewrite"
)

// ErrQueryFile wraps query-file parse failures.
var ErrQueryFile = errors.New("rosa: bad query file")

// ParseQuery reads a bounded model-checking query from a simple sectioned
// text format, so the standalone checker can run hand-written scenarios:
//
//	# comment
//	objects:
//	Process(1,10,11,12,10,11,12,run,set,set)
//	Dir(2,"/etc",511,40,41,3)
//	File(3,"/etc/passwd",0,40,41)
//	User(10)
//	messages:
//	open(1,3,0,0)
//	setuid(1,-1,128)
//	chown(1,-1,-1,41,1)
//	chmod(1,-1,511,0)
//	goal: read 3
//	maxstates: 100000
//	extended: true
//	workers: 4      # search workers per depth level (0 = one per CPU)
//	dedup: false    # disable visited-state deduplication (ablation)
//
// Terms use the functional syntax of rewrite.ParseTerm; capability-set
// message arguments are the Set bit patterns (caps.Set values). Goals:
//
//	read <fid>     the file is in some process's read set
//	write <fid>    ... write set
//	port <limit>   some socket bound to a port below limit
//	killed <pid>   the process was terminated
func ParseQuery(src string) (*Query, error) {
	q := &Query{}
	section := ""
	haveGoal := false

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		errf := func(format string, args ...any) error {
			return fmt.Errorf("%w: line %d: %s", ErrQueryFile, lineNo+1, fmt.Sprintf(format, args...))
		}

		lower := strings.ToLower(line)
		switch {
		case lower == "objects:":
			section = "objects"
			continue
		case lower == "messages:":
			section = "messages"
			continue
		case strings.HasPrefix(lower, "goal:"):
			g, err := parseGoalSpec(strings.TrimSpace(line[len("goal:"):]))
			if err != nil {
				return nil, errf("%v", err)
			}
			q.Goal = g
			haveGoal = true
			continue
		case strings.HasPrefix(lower, "maxstates:"):
			n, err := strconv.Atoi(strings.TrimSpace(line[len("maxstates:"):]))
			if err != nil {
				return nil, errf("bad maxstates: %v", err)
			}
			q.MaxStates = n
			continue
		case strings.HasPrefix(lower, "maxdepth:"):
			n, err := strconv.Atoi(strings.TrimSpace(line[len("maxdepth:"):]))
			if err != nil {
				return nil, errf("bad maxdepth: %v", err)
			}
			q.MaxDepth = n
			continue
		case strings.HasPrefix(lower, "extended:"):
			v, err := strconv.ParseBool(strings.TrimSpace(line[len("extended:"):]))
			if err != nil {
				return nil, errf("bad extended: %v", err)
			}
			q.Extended = v
			continue
		case strings.HasPrefix(lower, "workers:"):
			n, err := strconv.Atoi(strings.TrimSpace(line[len("workers:"):]))
			if err != nil {
				return nil, errf("bad workers: %v", err)
			}
			q.Workers = n
			continue
		case strings.HasPrefix(lower, "dedup:"):
			v, err := strconv.ParseBool(strings.TrimSpace(line[len("dedup:"):]))
			if err != nil {
				return nil, errf("bad dedup: %v", err)
			}
			q.NoDedup = !v
			continue
		}

		t, err := rewrite.ParseTerm(line)
		if err != nil {
			return nil, errf("%v", err)
		}
		switch section {
		case "objects":
			q.Objects = append(q.Objects, t)
		case "messages":
			q.Messages = append(q.Messages, t)
		default:
			return nil, errf("term outside an objects:/messages: section")
		}
	}
	if !haveGoal {
		return nil, fmt.Errorf("%w: missing goal:", ErrQueryFile)
	}
	if len(q.Objects) == 0 {
		return nil, fmt.Errorf("%w: no objects", ErrQueryFile)
	}
	return q, nil
}

func parseGoalSpec(spec string) (rewrite.Goal, error) {
	fields := strings.Fields(spec)
	if len(fields) != 2 {
		return rewrite.Goal{}, fmt.Errorf("goal wants \"<kind> <n>\", got %q", spec)
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil {
		return rewrite.Goal{}, fmt.Errorf("bad goal argument %q", fields[1])
	}
	switch strings.ToLower(fields[0]) {
	case "read":
		return GoalFileInReadSet(n), nil
	case "write":
		return GoalFileInWriteSet(n), nil
	case "port":
		return GoalPortBoundBelow(n), nil
	case "killed":
		return GoalProcessTerminated(n), nil
	default:
		return rewrite.Goal{}, fmt.Errorf("unknown goal kind %q (want read/write/port/killed)", fields[0])
	}
}
