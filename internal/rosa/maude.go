package rosa

import (
	"fmt"
	"strings"

	"privanalyzer/internal/caps"
	"privanalyzer/internal/rewrite"
	"privanalyzer/internal/vkernel"
)

// This file renders ROSA configurations and queries in the concrete Maude
// syntax of the paper's Figures 2–4, so a query built with this package can
// be inspected — or fed to a real Maude 2.7 + Full Maude installation
// running the original ROSA module — in the exact shape the paper prints.

// MaudeTerm renders one object or message term in ROSA's Maude syntax.
func MaudeTerm(t *rewrite.Term) string {
	if t == nil {
		return ""
	}
	switch {
	case t.Kind == rewrite.Op && t.Sym == symProcess && len(t.Args) == processArity:
		return maudeProcess(t)
	case t.Kind == rewrite.Op && t.Sym == symFile && len(t.Args) == fileArity:
		return fmt.Sprintf("< %d : File | name : %q ,\n             perms : %s ,\n             owner : %d , group : %d >",
			t.Args[fID].IntVal, t.Args[fName].StrVal,
			maudePerms(vkernel.Mode(t.Args[fPerms].IntVal)),
			t.Args[fOwner].IntVal, t.Args[fGroup].IntVal)
	case t.Kind == rewrite.Op && t.Sym == symDir && len(t.Args) == dirArity:
		return fmt.Sprintf("< %d : Dir | name : %q ,\n            perms : %s ,\n            inode : %d , owner : %d , group : %d >",
			t.Args[fID].IntVal, t.Args[fName].StrVal,
			maudePerms(vkernel.Mode(t.Args[fPerms].IntVal)),
			t.Args[dInode].IntVal, t.Args[fOwner].IntVal, t.Args[fGroup].IntVal)
	case t.Kind == rewrite.Op && t.Sym == symSocket && len(t.Args) == 2:
		return fmt.Sprintf("< %d : Socket | port : %d >", t.Args[0].IntVal, t.Args[1].IntVal)
	case t.Kind == rewrite.Op && t.Sym == symUser && len(t.Args) == 1:
		return fmt.Sprintf("< %d : User | uid : %d >", t.Args[0].IntVal, t.Args[0].IntVal)
	case t.Kind == rewrite.Op && t.Sym == symGroup && len(t.Args) == 1:
		return fmt.Sprintf("< %d : Group | gid : %d >", t.Args[0].IntVal, t.Args[0].IntVal)
	case t.Kind == rewrite.Op:
		// A syscall message: open(1,3,r - -,empty).
		parts := make([]string, len(t.Args))
		for i, a := range t.Args {
			parts[i] = maudeArg(t.Sym, i, a)
		}
		return fmt.Sprintf("%s(%s)", t.Sym, strings.Join(parts, ","))
	default:
		return t.String()
	}
}

func maudeProcess(t *rewrite.Term) string {
	return fmt.Sprintf("< %d : Process | euid : %d , ruid : %d , suid : %d ,\n"+
		"                 egid : %d , rgid : %d , sgid : %d ,\n"+
		"                 state : %s ,\n"+
		"                 rdfset : %s , wrfset : %s >",
		t.Args[pID].IntVal,
		t.Args[pEUID].IntVal, t.Args[pRUID].IntVal, t.Args[pSUID].IntVal,
		t.Args[pEGID].IntVal, t.Args[pRGID].IntVal, t.Args[pSGID].IntVal,
		t.Args[pState].Sym, maudeSet(t.Args[pRdf]), maudeSet(t.Args[pWrf]))
}

func maudeSet(t *rewrite.Term) string {
	if t == nil || t.Kind != rewrite.Op || len(t.Args) == 0 {
		return "empty"
	}
	parts := make([]string, len(t.Args))
	for i, e := range t.Args {
		parts[i] = fmt.Sprint(e.IntVal)
	}
	return strings.Join(parts, " , ")
}

// maudePerms renders a mode word the way the paper spaces it: "r w x r w x r w x".
func maudePerms(m vkernel.Mode) string {
	s := m.String()
	out := make([]byte, 0, len(s)*2)
	for i := 0; i < len(s); i++ {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, s[i])
	}
	return string(out)
}

// maudeArg renders one message argument. Privilege-set arguments (always the
// final position) become Maude privilege constants; open modes become the
// "r - -" rendering; everything else prints numerically.
func maudeArg(sym string, pos int, a *rewrite.Term) string {
	if !a.IsInt() {
		return a.String()
	}
	last := map[string]int{
		"open": 3, "chmod": 3, "fchmod": 3, "unlink": 2, "rename": 3,
		"chown": 4, "fchown": 4,
		"setuid": 2, "seteuid": 2, "setgid": 2, "setegid": 2,
		"setresuid": 4, "setresgid": 4,
		"kill": 3, "socket": 2, "bind": 3, "connect": 3,
	}
	if p, ok := last[sym]; ok && pos == p {
		return maudePrivs(caps.Set(a.IntVal))
	}
	if sym == "open" && pos == 2 {
		switch a.IntVal {
		case OpenRead:
			return "r - -"
		case OpenWrite:
			return "- w -"
		case OpenRDWR:
			return "r w -"
		}
	}
	if (sym == "chmod" || sym == "fchmod") && pos == 2 {
		return maudePerms(vkernel.Mode(a.IntVal))
	}
	return fmt.Sprint(a.IntVal)
}

// maudePrivs renders a capability set as ROSA's privilege constants:
// "empty", "CapSetuid", or "(CapChown ; CapSetuid)".
func maudePrivs(s caps.Set) string {
	if s.IsEmpty() {
		return "empty"
	}
	names := make([]string, 0, s.Len())
	for _, c := range s.Caps() {
		names = append(names, c.String())
	}
	if len(names) == 1 {
		return names[0]
	}
	return "(" + strings.Join(names, " ; ") + ")"
}

// MaudeSearch renders the complete Maude search command for a query — the
// paper's Figure 4 — with the compromised-state pattern expressed over
// fresh variables and the goal's semantic condition summarised in the
// `such that` clause.
func (q *Query) MaudeSearch(suchThat string) string {
	var b strings.Builder
	b.WriteString("(search in UNIX :\n")
	for _, o := range q.Objects {
		writeIndented(&b, MaudeTerm(o))
	}
	for _, m := range q.Messages {
		writeIndented(&b, MaudeTerm(m))
	}
	b.WriteString(" =>* Z:Configuration\n")
	b.WriteString("  < 1 : Process | euid : A:Int , ruid : B:Int ,\n")
	b.WriteString("                  suid : C:Int ,\n")
	b.WriteString("                  egid : D:Int , rgid : E:Int ,\n")
	b.WriteString("                  sgid : F:Int , state : G:procState ,\n")
	b.WriteString("                  rdfset : H:Set{Int} ,\n")
	b.WriteString("                  wrfset : I:Set{Int} >\n")
	if suchThat != "" {
		fmt.Fprintf(&b, "  such that (%s) .)\n", suchThat)
	} else {
		b.WriteString("  .)\n")
	}
	return b.String()
}

func writeIndented(b *strings.Builder, s string) {
	for _, line := range strings.Split(s, "\n") {
		b.WriteString(" ")
		b.WriteString(line)
		b.WriteByte('\n')
	}
}
