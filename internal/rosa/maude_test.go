package rosa

import (
	"strings"
	"testing"

	"privanalyzer/internal/caps"
	"privanalyzer/internal/vkernel"
)

func TestMaudeTermObjects(t *testing.T) {
	tests := []struct {
		name string
		term string
		want []string
	}{
		{
			"process",
			MaudeTerm(Process(1, Creds{EUID: 10, RUID: 11, SUID: 12, EGID: 10, RGID: 11, SGID: 12}, nil, nil)),
			[]string{
				"< 1 : Process | euid : 10 , ruid : 11 , suid : 12 ,",
				"egid : 10 , rgid : 11 , sgid : 12 ,",
				"state : run ,",
				"rdfset : empty , wrfset : empty >",
			},
		},
		{
			"file",
			MaudeTerm(File(3, "/etc/passwd", vkernel.MustMode("---------"), 40, 41)),
			[]string{
				`< 3 : File | name : "/etc/passwd" ,`,
				"perms : - - - - - - - - - ,",
				"owner : 40 , group : 41 >",
			},
		},
		{
			"dir",
			MaudeTerm(DirEntry(2, "/etc", vkernel.MustMode("rwxrwxrwx"), 40, 41, 3)),
			[]string{
				`< 2 : Dir | name : "/etc" ,`,
				"perms : r w x r w x r w x ,",
				"inode : 3 , owner : 40 , group : 41 >",
			},
		},
		{
			"user",
			MaudeTerm(User(10)),
			[]string{"< 10 : User | uid : 10 >"},
		},
		{
			"socket",
			MaudeTerm(SocketObj(7, 22)),
			[]string{"< 7 : Socket | port : 22 >"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			for _, w := range tt.want {
				if !strings.Contains(tt.term, w) {
					t.Errorf("missing %q in:\n%s", w, tt.term)
				}
			}
		})
	}
}

func TestMaudeTermMessages(t *testing.T) {
	tests := []struct {
		got  string
		want string
	}{
		// The four messages of the paper's Figure 2, rendered verbatim.
		{MaudeTerm(OpenMsg(1, 3, OpenRead, caps.EmptySet)), "open(1,3,r - -,empty)"},
		{MaudeTerm(SetuidMsg(1, Wild, caps.NewSet(caps.CapSetuid))), "setuid(1,-1,CapSetuid)"},
		{MaudeTerm(ChownMsg(1, Wild, Wild, 41, caps.NewSet(caps.CapChown))), "chown(1,-1,-1,41,CapChown)"},
		{MaudeTerm(ChmodMsg(1, Wild, vkernel.MustMode("rwxrwxrwx"), caps.EmptySet)), "chmod(1,-1,r w x r w x r w x,empty)"},
		// Multi-privilege sets use Maude's set union.
		{
			MaudeTerm(KillMsg(1, 4, 9, caps.NewSet(caps.CapKill, caps.CapSetuid))),
			"kill(1,4,9,(CapKill ; CapSetuid))",
		},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("MaudeTerm = %q, want %q", tt.got, tt.want)
		}
	}
}

func TestMaudeSearchFigure4(t *testing.T) {
	// Rebuild the paper's worked example and check the rendered search
	// command carries the Figure 2 start state and the Figure 3/4 goal.
	q := workedExample()
	out := q.MaudeSearch("3 in H:Set{Int}")
	for _, w := range []string{
		"(search in UNIX :",
		"< 1 : Process | euid : 10 , ruid : 11 , suid : 12 ,",
		`< 2 : Dir | name : "/etc" ,`,
		`< 3 : File | name : "/etc/passwd" ,`,
		"< 10 : User | uid : 10 >",
		"open(1,3,r - -,empty)",
		"setuid(1,-1,CapSetuid)",
		"chown(1,-1,-1,41,CapChown)",
		"chmod(1,-1,r w x r w x r w x,empty)",
		"=>* Z:Configuration",
		"rdfset : H:Set{Int} ,",
		"such that (3 in H:Set{Int}) .)",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("MaudeSearch missing %q:\n%s", w, out)
		}
	}
}

func TestMaudeSetRendering(t *testing.T) {
	p := Process(1, UniformCreds(0, 0), SetOf(3, 7), nil)
	got := MaudeTerm(p)
	if !strings.Contains(got, "rdfset : 3 , 7 ,") && !strings.Contains(got, "rdfset : 3 , 7 ") {
		t.Errorf("set rendering wrong:\n%s", got)
	}
}
