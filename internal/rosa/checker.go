package rosa

import (
	"context"

	"privanalyzer/internal/rewrite"
)

// Checker runs many queries against one shared pair of rewrite theories.
// Query.RunContext builds a fresh System per call, which is correct but
// discards everything the engine learned: the rule index, the memoized
// term bitmaps, and — most importantly — the transition cache. The attack
// queries a program analysis issues per phase (and repeated phases with
// identical credentials and privileges) explore heavily overlapping state
// graphs, so a Checker attaches one TransitionCache per system and every
// query it runs shares the expanded graph. core.AnalyzeContext holds one
// Checker per analyzed program.
//
// Sharing is safe because searches never mutate the System: the rule set is
// fixed at construction, and cached successor sets are immutable. Verdicts,
// witnesses, and state counts are identical to fresh-System runs — the
// cache returns exactly what the walk would recompute.
type Checker struct {
	base, ext *rewrite.System
}

// NewChecker builds the base and §X extended systems, each with its own
// transition cache (their rule sets differ, so their successor sets must
// never mix).
func NewChecker() *Checker {
	base := NewSystem()
	base.Cache = rewrite.NewTransitionCache()
	ext := NewExtendedSystem()
	ext.Cache = rewrite.NewTransitionCache()
	return &Checker{base: base, ext: ext}
}

// system returns the shared System a query with the given extension flag
// runs against.
func (c *Checker) system(extended bool) *rewrite.System {
	if extended {
		return c.ext
	}
	return c.base
}

// Run executes q against the checker's shared systems — the drop-in,
// cache-warm replacement for q.RunContext(ctx).
func (c *Checker) Run(ctx context.Context, q *Query) (*Result, error) {
	return q.runOn(ctx, c.system(q.Extended))
}

// BaseCache exposes the base system's transition cache (telemetry and
// tests).
func (c *Checker) BaseCache() *rewrite.TransitionCache { return c.base.Cache }

// ExtendedCache exposes the extended system's transition cache.
func (c *Checker) ExtendedCache() *rewrite.TransitionCache { return c.ext.Cache }
