package server

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"privanalyzer/internal/api"
	"privanalyzer/internal/telemetry"
)

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := buf.WriteString(readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	return resp, []byte(buf.String())
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	b := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(b)
		sb.Write(b[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

func decodeError(t *testing.T, body []byte) api.ErrorResponse {
	t.Helper()
	var e api.ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error envelope is not valid JSON: %v\n%s", err, body)
	}
	return e
}

func TestDiagnosticsEndpoints(t *testing.T) {
	_, ts := testServer(t, Config{})
	for _, ep := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s = %d, want 200", ep, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("content type = %q", ct)
	}
	// The serving metrics schema is visible at boot, before any request.
	for _, metric := range []string{
		"server_requests_total", "rosa_queries_total", "rosa_succ_cache_hits_total",
	} {
		if !strings.Contains(body, metric) {
			t.Errorf("/metrics missing %s at boot:\n%s", metric, body)
		}
	}
}

func TestReadyzSaturated(t *testing.T) {
	// One worker, depth-1 queue: a stalled job plus one pending request
	// saturates admission, and /readyz must say so with a 503.
	s, ts := testServer(t, Config{Concurrency: 1, QueueDepth: 1})
	gate := make(chan struct{})
	running := make(chan struct{})
	go s.pool.submit(context.Background(), 0, func() { close(running); <-gate })
	<-running
	go s.pool.submit(context.Background(), 0, func() {})
	for !s.pool.saturated() {
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz while saturated = %d, want 503", resp.StatusCode)
	}

	// An API request is rejected with the saturated envelope, not queued.
	resp2, body := postJSON(t, ts.URL+"/v1/analyze", `{"program":"su"}`)
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("saturated analyze = %d, want 503", resp2.StatusCode)
	}
	if e := decodeError(t, body); e.Error.Code != api.CodeSaturated {
		t.Errorf("code = %q, want %q", e.Error.Code, api.CodeSaturated)
	}

	close(gate)
	for s.pool.saturated() {
		time.Sleep(time.Millisecond)
	}
	resp3, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Errorf("/readyz after drain = %d, want 200", resp3.StatusCode)
	}
}

func TestAnalyzeBadRequests(t *testing.T) {
	_, ts := testServer(t, Config{Concurrency: 1})
	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"not json", `{`, http.StatusBadRequest, api.CodeBadRequest},
		{"unknown field", `{"program":"su","bogus":1}`, http.StatusBadRequest, api.CodeBadRequest},
		{"missing program", `{}`, http.StatusBadRequest, api.CodeBadRequest},
		{"unknown program", `{"program":"emacs"}`, http.StatusNotFound, api.CodeNotFound},
		{"bad attack id", `{"program":"su","attacks":[7]}`, http.StatusBadRequest, api.CodeBadRequest},
		{"bad escalate", `{"program":"su","search":{"escalate":"zzz"}}`, http.StatusBadRequest, api.CodeBadRequest},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/analyze", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
			continue
		}
		if e := decodeError(t, body); e.Error.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, e.Error.Code, tc.code)
		}
	}
	// Wrong method is a plain mux 405, no envelope required.
	resp, err := http.Get(ts.URL + "/v1/analyze")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/analyze = %d, want 405", resp.StatusCode)
	}
}

func TestAnalyzeEndToEnd(t *testing.T) {
	_, ts := testServer(t, Config{Concurrency: 2})
	resp, body := postJSON(t, ts.URL+"/v1/analyze",
		`{"program":"ping","attacks":[3],"search":{"stats":true,"workers":1}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("content type = %q", ct)
	}
	var ar api.AnalyzeResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatalf("response is not an AnalyzeResponse: %v\n%s", err, body)
	}
	if ar.APIVersion != api.Version || ar.Program != "ping" {
		t.Errorf("header fields: %+v", ar)
	}
	if len(ar.Phases) == 0 {
		t.Fatal("no phases")
	}
	for _, ph := range ar.Phases {
		if len(ph.Queries) != 1 || ph.Queries[0].Attack != 3 {
			t.Fatalf("phase %s queries = %+v, want exactly attack 3", ph.Name, ph.Queries)
		}
		q := ph.Queries[0]
		if q.Verdict != "safe" && q.Verdict != "vulnerable" && q.Verdict != "unknown" {
			t.Errorf("phase %s verdict = %q", ph.Name, q.Verdict)
		}
		if q.Stats == nil {
			t.Errorf("phase %s: stats requested but absent", ph.Name)
		}
	}
}

func TestQueryEndToEnd(t *testing.T) {
	_, ts := testServer(t, Config{Concurrency: 2})
	// Table I attack 2 with CapSetuid is possible ("setuid becomes owner")
	// — a witness must come back.
	resp, body := postJSON(t, ts.URL+"/v1/query",
		`{"attack":2,"privs":"CapSetuid","syscalls":["open","chown","setuid","seteuid","setresuid","setgid","setegid","setresgid","unlink","rename"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr api.QueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("response is not a QueryResponse: %v\n%s", err, body)
	}
	if qr.APIVersion != api.Version || qr.Description == "" {
		t.Errorf("header fields: %+v", qr)
	}
	if qr.Result.Verdict != "vulnerable" {
		t.Errorf("verdict = %q, want vulnerable", qr.Result.Verdict)
	}
	if len(qr.Result.Witness) == 0 {
		t.Error("vulnerable verdict without a witness")
	}

	// Validation errors use the envelope.
	resp2, body2 := postJSON(t, ts.URL+"/v1/query", `{"attack":1}`)
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("missing syscalls = %d, want 400", resp2.StatusCode)
	}
	if e := decodeError(t, body2); e.Error.Code != api.CodeBadRequest {
		t.Errorf("code = %q", e.Error.Code)
	}
}

func TestProgramsEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/programs")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var pr api.ProgramsResponse
	if err := json.Unmarshal([]byte(body), &pr); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range pr.Programs {
		if p == "passwd" {
			found = true
		}
	}
	if !found {
		t.Errorf("programs list missing passwd: %v", pr.Programs)
	}
}

func TestServerDefaultSearchApplied(t *testing.T) {
	// A server-wide budget cap (the multi-tenant fairness knob) reaches
	// requests that do not set their own: a 2-state default budget forces ⏱
	// somewhere in the grid.
	_, ts := testServer(t, Config{
		Concurrency:   1,
		DefaultSearch: api.SearchParams{Budget: 2},
	})
	resp, body := postJSON(t, ts.URL+"/v1/analyze", `{"program":"passwd"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var ar api.AnalyzeResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	sawUnknown := false
	for _, ph := range ar.Phases {
		for _, q := range ph.Queries {
			if q.Verdict == "unknown" {
				sawUnknown = true
			}
		}
	}
	if !sawUnknown {
		t.Error("2-state default budget truncated nothing — server defaults not applied")
	}
}

func TestServeGracefulDrain(t *testing.T) {
	s := New(Config{Concurrency: 1, DrainTimeout: 5 * time.Second, Logger: telemetry.Discard})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	listening := make(chan struct{})
	go func() {
		done <- s.ListenAndServe(ctx, "127.0.0.1:0", func(net.Addr) { close(listening) })
	}()
	<-listening
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("drain did not complete")
	}
}
