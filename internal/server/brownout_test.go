package server

import (
	"strings"
	"testing"
	"time"
)

func TestParseBrownout(t *testing.T) {
	cases := []struct {
		in      string
		want    BrownoutConfig
		wantErr string
	}{
		{in: "", want: BrownoutConfig{}},
		{in: "off", want: BrownoutConfig{}},
		{in: "q=48", want: BrownoutConfig{QueueHigh: 48}},
		{in: "q=48,wait=2s,heap=1G,interval=100ms,hold=2", want: BrownoutConfig{
			QueueHigh: 48, WaitP95: 2 * time.Second, HeapBytes: 1 << 30,
			Interval: 100 * time.Millisecond, Hold: 2,
		}},
		{in: "heap=512M", want: BrownoutConfig{HeapBytes: 512 << 20}},
		{in: "heap=64K", want: BrownoutConfig{HeapBytes: 64 << 10}},
		{in: "heap=1024", want: BrownoutConfig{HeapBytes: 1024}},
		{in: "q=0", wantErr: "positive integer"},
		{in: "wait=-1s", wantErr: "positive duration"},
		{in: "heap=zzz", wantErr: "byte count"},
		{in: "bogus=1", wantErr: "unknown key"},
		{in: "q", wantErr: "key=value"},
		{in: "interval=250ms", wantErr: "at least one"},
		{in: "hold=4", wantErr: "at least one"},
	}
	for _, tc := range cases {
		got, err := ParseBrownout(tc.in)
		if tc.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ParseBrownout(%q) err = %v, want containing %q", tc.in, err, tc.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseBrownout(%q) = %v", tc.in, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseBrownout(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestBrownoutHysteresis(t *testing.T) {
	// Drive the state machine directly: up one level per overloaded sample,
	// down one after Hold consecutive healthy samples.
	s := New(Config{Concurrency: 1})
	defer s.Close()
	b := &brownout{cfg: BrownoutConfig{QueueHigh: 1, Hold: 2}, srv: s, log: s.log}

	for i, want := range []int{1, 2, 3, 3} { // saturates at emergency
		b.step(true)
		if got := b.Level(); got != want {
			t.Fatalf("after %d overloaded samples level = %d, want %d", i+1, got, want)
		}
	}
	b.step(false)
	if got := b.Level(); got != BrownoutEmergency {
		t.Fatalf("one healthy sample dropped the level to %d — hysteresis broken", got)
	}
	b.step(false)
	if got := b.Level(); got != BrownoutDegradeSearch {
		t.Fatalf("after Hold healthy samples level = %d, want %d", got, BrownoutDegradeSearch)
	}
	// One overloaded sample resets the healthy streak.
	b.step(false)
	b.step(true)
	b.step(false)
	if got := b.Level(); got != BrownoutEmergency {
		t.Fatalf("level = %d, want %d (overload resets the streak)", got, BrownoutEmergency)
	}
	if got := s.reg.Counter("server_brownout_transitions_total").Value(); got == 0 {
		t.Error("transitions not counted")
	}
}

func TestBrownoutControllerStepsOnRealLoad(t *testing.T) {
	// End-to-end: a saturated queue trips the sampler, the gauge follows,
	// and recovery steps back down to normal.
	s := New(Config{
		Concurrency: 1, QueueDepth: 4,
		Brownout: BrownoutConfig{QueueHigh: 1, Interval: 5 * time.Millisecond, Hold: 2},
	})
	defer s.Close()
	gate := make(chan struct{})
	running := make(chan struct{})
	s.pool.enqueue(0, func() { close(running); <-gate }, nil)
	<-running
	s.pool.enqueue(0, func() {}, nil) // pending=1 ≥ QueueHigh
	deadline := time.Now().Add(5 * time.Second)
	for s.brown.Level() < BrownoutShedBackground {
		if time.Now().After(deadline) {
			t.Fatal("brownout never engaged under queue pressure")
		}
		time.Sleep(time.Millisecond)
	}
	if got := s.reg.Gauge("server_brownout_level").Value(); got < 1 {
		t.Errorf("server_brownout_level gauge = %d, want ≥ 1", got)
	}
	close(gate)
	for s.brown.Level() != BrownoutNormal {
		if time.Now().After(deadline) {
			t.Fatal("brownout never recovered after load cleared")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestClampEscalateStart(t *testing.T) {
	if got := clampEscalateStart(0); got != brownoutEscalateStart {
		t.Errorf("clamp(0) = %d, want %d", got, brownoutEscalateStart)
	}
	if got := clampEscalateStart(1 << 20); got != brownoutEscalateStart {
		t.Errorf("clamp(1M) = %d, want %d", got, brownoutEscalateStart)
	}
	if got := clampEscalateStart(64); got != 64 {
		t.Errorf("clamp(64) = %d, want 64 (already below)", got)
	}
}
