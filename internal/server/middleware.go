package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"sync/atomic"
	"time"

	"privanalyzer/internal/api"
	"privanalyzer/internal/telemetry"
)

// reqMeta is the per-request observability carrier threaded through the
// context: the pool fills in what the handler can't know up front (queue
// wait, effective priority), and both the access log and the slow-query
// journal read it after the fact. Atomics because the filling happens on a
// pool worker while the access log reads on the handler goroutine.
type reqMeta struct {
	queueWaitNS atomic.Int64
	priority    atomic.Int64
	// costObserved flips when the request's ledger cost reached the
	// admission estimator (recordSlow), so the server's outer wall
	// measurement is only used as the fallback signal.
	costObserved atomic.Bool
}

type reqMetaKey struct{}

// withReqMeta attaches a fresh carrier to ctx and returns both.
func withReqMeta(ctx context.Context) (context.Context, *reqMeta) {
	m := &reqMeta{}
	return context.WithValue(ctx, reqMetaKey{}, m), m
}

// reqMetaFrom returns the context's carrier, or nil (job contexts descend
// from the server base and get their own).
func reqMetaFrom(ctx context.Context) *reqMeta {
	m, _ := ctx.Value(reqMetaKey{}).(*reqMeta)
	return m
}

// newRequestID mints a correlation id for requests that arrive without one:
// 8 random bytes, hex — short enough to read in a log line, wide enough to
// never collide within a retention window.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; serve anyway with a
		// degenerate id rather than refuse traffic.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// statusWriter captures the response status for the serving histograms and
// access log. It forwards Flush so SSE streaming works through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps an API handler with the request-scoped observability the
// whole PR hangs off:
//
//   - Correlation id: the X-Request-ID header (minted when absent) is echoed
//     on the response, carried on the request context
//     (telemetry.WithRequestID — StartSpan and the pool's exec logger pick
//     it up), and stamped on the access-log record, so one id joins logs,
//     spans, job state, and the SSE feed.
//   - Per-route serving histogram: server_http_<route>_<status>_ns (the
//     go 1.22 mux has no route introspection, so the route name is bound
//     here, at registration).
//   - Access log: one Info record per request, with the id.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		ctx, meta := withReqMeta(telemetry.WithRequestID(r.Context(), id))
		func() {
			// A panicking handler must still answer: net/http's own recovery
			// would drop the connection mid-air, which a client sees as a hang
			// or a truncated body. Recover here and turn it into the uniform
			// 500 envelope — the X-Request-ID header is already set, so the
			// failure stays correlatable.
			defer func() {
				if rec := recover(); rec != nil {
					s.log.Error("handler panic",
						"component", "server", "route", route,
						"request_id", id, "panic", rec)
					if sw.status == 0 {
						s.writeError(sw, http.StatusInternalServerError,
							api.CodeInternal, "internal error: handler panic")
					}
				}
			}()
			h(sw, r.WithContext(ctx))
		}()
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		elapsed := time.Since(start)
		s.reg.Timer(routeMetricName(route, sw.status)).Observe(elapsed)
		// queue_wait_ns and priority make queue saturation visible per
		// request: a slow response splits into "sat in the queue" vs "ran
		// long". Both stay zero on routes that never touch the pool.
		s.log.Info("http request",
			"component", "server",
			"route", route,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"request_id", id,
			"queue_wait_ns", meta.queueWaitNS.Load(),
			"priority", meta.priority.Load(),
			"elapsed", elapsed)
	}
}

// routeMetricName builds the per-route histogram name without fmt: the
// status is always three digits.
func routeMetricName(route string, status int) string {
	digits := [3]byte{byte('0' + status/100%10), byte('0' + status/10%10), byte('0' + status%10)}
	return "server_http_" + route + "_" + string(digits[:]) + "_ns"
}
