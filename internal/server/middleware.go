package server

import (
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"time"

	"privanalyzer/internal/telemetry"
)

// newRequestID mints a correlation id for requests that arrive without one:
// 8 random bytes, hex — short enough to read in a log line, wide enough to
// never collide within a retention window.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; serve anyway with a
		// degenerate id rather than refuse traffic.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// statusWriter captures the response status for the serving histograms and
// access log. It forwards Flush so SSE streaming works through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps an API handler with the request-scoped observability the
// whole PR hangs off:
//
//   - Correlation id: the X-Request-ID header (minted when absent) is echoed
//     on the response, carried on the request context
//     (telemetry.WithRequestID — StartSpan and the pool's exec logger pick
//     it up), and stamped on the access-log record, so one id joins logs,
//     spans, job state, and the SSE feed.
//   - Per-route serving histogram: server_http_<route>_<status>_ns (the
//     go 1.22 mux has no route introspection, so the route name is bound
//     here, at registration).
//   - Access log: one Info record per request, with the id.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = newRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h(sw, r.WithContext(telemetry.WithRequestID(r.Context(), id)))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		elapsed := time.Since(start)
		s.reg.Timer(routeMetricName(route, sw.status)).Observe(elapsed)
		s.log.Info("http request",
			"component", "server",
			"route", route,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"request_id", id,
			"elapsed", elapsed)
	}
}

// routeMetricName builds the per-route histogram name without fmt: the
// status is always three digits.
func routeMetricName(route string, status int) string {
	digits := [3]byte{byte('0' + status/100%10), byte('0' + status/10%10), byte('0' + status%10)}
	return "server_http_" + route + "_" + string(digits[:]) + "_ns"
}
