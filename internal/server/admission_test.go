package server

import (
	"testing"
	"time"
)

func TestAdmissionBudget(t *testing.T) {
	// Budget = 25ms of estimated backlog; the default query estimate is
	// 10ms, so two queries fit and the third is rejected until one releases.
	a := NewAdmission(25 * time.Millisecond)
	t1, ok := a.Admit("query")
	if !ok {
		t.Fatal("first admit rejected")
	}
	t2, ok := a.Admit("query")
	if !ok {
		t.Fatal("second admit rejected")
	}
	if _, ok := a.Admit("query"); ok {
		t.Fatalf("third admit accepted with backlog %s over budget", a.Backlog())
	}
	t1.release()
	t3, ok := a.Admit("query")
	if !ok {
		t.Fatal("admit after release rejected")
	}
	t2.release()
	t3.release()
	if got := a.Backlog(); got != 0 {
		t.Fatalf("backlog after all releases = %s, want 0", got)
	}
}

func TestAdmissionTicketReleaseIdempotent(t *testing.T) {
	a := NewAdmission(time.Second)
	tkt, _ := a.Admit("query")
	tkt.release()
	tkt.release() // terminal paths race; double release must not underflow
	if got := a.Backlog(); got != 0 {
		t.Fatalf("backlog after double release = %s, want 0", got)
	}
	var nilTkt *ticket
	nilTkt.release() // nil-safe
}

func TestAdmissionExpensiveSingleRequestStillAdmitted(t *testing.T) {
	// A kind whose estimate exceeds the whole budget must still be admitted
	// into an empty server — the gate sheds bursts, it does not starve
	// expensive kinds forever.
	a := NewAdmission(time.Millisecond)
	a.Observe("analyze", 10*time.Second)
	tkt, ok := a.Admit("analyze")
	if !ok {
		t.Fatal("expensive request rejected by an empty server")
	}
	// But a second one on top of the outstanding backlog is shed.
	if _, ok := a.Admit("analyze"); ok {
		t.Fatal("second expensive request admitted over budget")
	}
	tkt.release()
}

func TestAdmissionEWMATracksObservations(t *testing.T) {
	a := NewAdmission(0)
	if got := a.Estimate("query"); got != time.Duration(defaultQueryCostNS) {
		t.Fatalf("cold estimate = %s, want default %s", got, time.Duration(defaultQueryCostNS))
	}
	a.Observe("query", 100*time.Millisecond)
	if got := a.Estimate("query"); got != 100*time.Millisecond {
		t.Fatalf("first observation = %s, want 100ms (seeds the EWMA)", got)
	}
	a.Observe("query", 200*time.Millisecond)
	got := a.Estimate("query")
	if got <= 100*time.Millisecond || got >= 200*time.Millisecond {
		t.Fatalf("EWMA after 100ms,200ms = %s, want strictly between", got)
	}
	// Zero budget never rejects.
	for i := 0; i < 100; i++ {
		if _, ok := a.Admit("query"); !ok {
			t.Fatal("zero budget rejected")
		}
	}
}

func TestRetryAfterClamped(t *testing.T) {
	s := New(Config{Concurrency: 1, Logger: nil})
	defer s.Close()
	// Cold histogram: the floor, not zero.
	if got := s.retryAfter(); got != minRetryAfter {
		t.Fatalf("cold retryAfter = %s, want floor %s", got, minRetryAfter)
	}
	// An outlier-poisoned p95 is capped.
	s.reg.Timer("server_queue_wait_ns").Observe(10 * time.Minute)
	if got := s.retryAfter(); got != maxRetryAfter {
		t.Fatalf("poisoned retryAfter = %s, want cap %s", got, maxRetryAfter)
	}
}
