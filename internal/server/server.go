// Package server is the long-lived analysis daemon behind privanalyzerd: a
// REST+JSON front end over the engine that runs submissions on a bounded,
// prioritized worker pool and keeps per-program rosa.Checker instances hot
// in an LRU so the interner and transition caches amortize across requests.
//
// The wire contract lives in internal/api — handlers decode requests into
// and encode responses from those types only, so the server's JSON is the
// same schema the CLIs emit. Results are deterministic by construction:
// warm caches and concurrency change latency, never verdicts, witnesses, or
// state counts (pinned by this package's determinism tests).
//
// Endpoints: POST /v1/analyze (full pipeline for one modeled program),
// POST /v1/query (one standalone ROSA query), GET /v1/programs, plus the
// diagnostics surface RegisterDiagnostics installs (/healthz, /readyz —
// 503 while the queue is saturated or the server drains — /metrics, and
// /debug/pprof). Serve drains gracefully: SIGTERM (via
// cmdutil.SignalContext upstream) stops admissions, lets queued and
// in-flight work finish inside DrainTimeout, then force-cancels stragglers.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"sync"
	"time"

	"privanalyzer/internal/api"
	"privanalyzer/internal/faultinject"
	"privanalyzer/internal/telemetry"
)

// Config tunes the daemon. The zero value serves with defaults.
type Config struct {
	// Concurrency is the worker-pool size — how many analyses/queries run
	// at once (each may use multi-worker search internally). 0 = NumCPU.
	Concurrency int
	// QueueDepth bounds the pending queue; a full queue rejects with 503
	// and flips /readyz. 0 = 64.
	QueueDepth int
	// Checkers caps the per-program checker LRU. 0 = 8.
	Checkers int
	// DefaultSearch supplies server-side fallbacks for request knobs left
	// zero (the privanalyzerd flag surface, shared via cmdutil.SearchFlags).
	DefaultSearch api.SearchParams
	// RequestTimeout bounds each request's wall clock when neither the
	// request nor DefaultSearch sets one; expired work resolves to ⏱
	// verdicts, not errors. 0 = unbounded.
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown. 0 = 10s.
	DrainTimeout time.Duration
	// JobStatsInterval throttles async jobs' progress snapshots (the SSE
	// stats frames). 0 keeps the engine's default cadence: one snapshot per
	// completed depth level.
	JobStatsInterval time.Duration
	// SlowLog bounds the slow-query journal (GET /v1/slowlog): the top-K
	// costliest requests are retained. 0 = 32. Requests running with the
	// cost ledger disabled (no_cost) never enter the journal.
	SlowLog int
	// MaxQueueCost bounds the estimated backlog the server will hold: the
	// sum of per-kind EWMA cost estimates (fed by the obs.QueryCost ledger)
	// over admitted-but-unfinished requests. Over-budget work is rejected
	// with a 429 "admission_rejected" envelope carrying retry_after_ms
	// derived from the current queue-wait p95. 0 disables the cost gate
	// (the queue-depth bound still applies).
	MaxQueueCost time.Duration
	// MaxDeadline caps each request's deadline_ms; requests asking for more
	// (or none) get this. Queue wait counts against the deadline — a request
	// still queued at expiry is withdrawn without running (504). 0 = no cap
	// and no server-imposed deadline.
	MaxDeadline time.Duration
	// Brownout declares the overload thresholds for the degradation
	// controller (brownout.go). The zero value disables it.
	Brownout BrownoutConfig
	// ServerFaults injects serving-layer faults (chaos tests): handler
	// panics, worker stalls, queue-full storms. Nil injects nothing.
	ServerFaults *faultinject.ServerPlan
	// SearchFaults, when set, is threaded into every request's search
	// options (chaos tests: deterministic engine faults under serving
	// load). Nil injects nothing.
	SearchFaults *faultinject.Plan
	// Registry receives the server and engine metrics. Nil builds one.
	Registry *telemetry.Registry
	// Logger receives structured logs. Nil discards.
	Logger *slog.Logger
}

// Server is the daemon: pool, checker LRU, jobs registry, metrics, and HTTP
// surface.
type Server struct {
	cfg      Config
	reg      *telemetry.Registry
	log      *slog.Logger
	pool     *pool
	checkers *checkerLRU
	jobs     *jobRegistry
	slow     *slowLog
	adm      *Admission
	brown    *brownout
	mux      *http.ServeMux

	// base is the context async jobs (and Serve's requests) descend from: a
	// client dropping its SSE stream must not cancel the job it watches, so
	// job execution is scoped to the server's lifetime, not the request's.
	// killBase fires after the drain window closes.
	base     context.Context
	killBase context.CancelFunc

	// drainCh closes when drain begins — the SSE streams' cue to emit a
	// typed shutdown frame while their jobs finish.
	drainCh   chan struct{}
	drainOnce sync.Once
}

// New builds a Server and starts its worker pool. Metrics the operators
// scrape are pre-registered so /metrics exposes the full schema (at zero)
// from the first request, not after the first analysis.
func New(cfg Config) *Server {
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = runtime.NumCPU()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Checkers <= 0 {
		cfg.Checkers = 8
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 10 * time.Second
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.New()
	}
	log := cfg.Logger
	if log == nil {
		log = telemetry.Discard
	}
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		log:      log,
		pool:     newPool(cfg.Concurrency, cfg.QueueDepth),
		checkers: newCheckerLRU(cfg.Checkers),
		jobs:     newJobRegistry(),
		slow:     newSlowLog(cfg.SlowLog),
		adm:      NewAdmission(cfg.MaxQueueCost),
		drainCh:  make(chan struct{}),
	}
	s.base, s.killBase = context.WithCancel(context.Background())
	s.pool.onWait = func(d time.Duration) { s.reg.Timer("server_queue_wait_ns").Observe(d) }
	for _, name := range []string{
		"server_requests_total", "server_errors_total",
		"server_rejected_total",
		"server_shed_queue_full_total", "server_shed_cost_total",
		"server_shed_brownout_total", "server_shed_deadline_total",
		"server_shed_shutdown_total",
		"server_brownout_transitions_total",
		"server_jobs_total",
		"rosa_queries_total",
		"rosa_succ_cache_hits_total", "rosa_succ_cache_misses_total",
		"rosa_compiled_matches_total", "rosa_fallback_matches_total",
		"rosa_recorder_dropped_events_total",
		"server_slowlog_admitted_total",
	} {
		s.reg.Counter(name)
	}
	s.reg.Gauge("rosa_compiled_rules")
	s.reg.Gauge("server_slowlog_entries")
	s.reg.Gauge("server_queue_pending")
	s.reg.Gauge("server_queue_inflight")
	s.reg.Gauge("server_checkers_resident")
	s.reg.Gauge("server_jobs_resident")
	s.reg.Gauge("server_brownout_level")
	// The serving histograms' steady-state schema: the happy-path status per
	// route is visible (at zero) from boot; error statuses appear on first
	// occurrence.
	s.reg.Timer("server_queue_wait_ns")
	for _, route := range []string{
		"analyze", "query", "programs", "version", "job_status", "job_events",
		"slowlog", "metrics_json",
	} {
		s.reg.Timer("server_http_" + route + "_200_ns")
	}
	s.reg.Timer("server_http_jobs_202_ns") // job submission acknowledges with 202
	// Boot sample of the runtime's process metrics, so /metrics and
	// /v1/metrics.json expose the process_* schema before the first scrape;
	// every scrape re-samples.
	s.reg.SampleProcess()
	// The brownout controller samples the pool, registry, and logger, so it
	// starts last.
	s.brown = newBrownout(s, cfg.Brownout)
	s.mux = s.routes()
	return s
}

// Handler returns the full HTTP surface (API + diagnostics), ready to mount
// on any listener — httptest servers included.
func (s *Server) Handler() http.Handler { return s.mux }

// Ready reports admission readiness: nil when a request submitted now would
// be queued, ErrSaturated/ErrClosed otherwise. /readyz maps an error to 503.
func (s *Server) Ready() error {
	_, err := s.ReadyDetail()
	return err
}

// ReadyDetail reports readiness plus a one-line operational detail for
// /readyz: queue occupancy, estimated backlog, and the brownout level. The
// error is non-nil when the server should not receive new traffic — the
// queue is saturated, drain has begun, or the brownout controller is at
// emergency.
func (s *Server) ReadyDetail() (string, error) {
	pending, inflight := s.pool.stats()
	lvl := s.brown.Level()
	detail := fmt.Sprintf("queue %d/%d inflight %d/%d backlog %s brownout %d (%s)",
		pending, s.cfg.QueueDepth, inflight, s.cfg.Concurrency,
		s.adm.Backlog().Round(time.Millisecond), lvl, brownoutLevelName(lvl))
	if s.pool.saturated() {
		return detail, ErrSaturated
	}
	if lvl >= BrownoutEmergency {
		return detail, fmt.Errorf("server: brownout level %d (%s)", lvl, brownoutLevelName(lvl))
	}
	return detail, nil
}

// beginDrain flips the server into draining: SSE streams see drainCh close
// and tell their subscribers. Idempotent.
func (s *Server) beginDrain() {
	s.drainOnce.Do(func() { close(s.drainCh) })
}

// Close stops admissions, aborts queued-but-unstarted work with a terminal
// shutdown outcome, and waits (bounded by DrainTimeout) for in-flight work
// to finish before cancelling stragglers. For direct-Handler users (tests);
// Serve runs the same sequence during drain with the HTTP shutdown
// interleaved.
func (s *Server) Close() {
	s.beginDrain()
	if n := s.pool.abortPending(ErrShutdown); n > 0 {
		s.reg.Counter("server_shed_shutdown_total").Add(int64(n))
	}
	if !s.pool.drainWithin(s.cfg.DrainTimeout) {
		s.log.Warn("drain timeout: cancelling stragglers", "component", "server")
		s.killBase()
		s.pool.drainWithin(time.Second)
	}
	s.killBase()
	s.brown.close()
}

// observeCost feeds one finished request's wall time into the admission
// estimator — unless the request's ledger cost already did (recordSlow), in
// which case the finer measurement wins.
func (s *Server) observeCost(kind string, meta *reqMeta, wall time.Duration) {
	if meta != nil && meta.costObserved.Load() {
		return
	}
	s.adm.Observe(kind, wall)
}

// run pushes fn through admission and the queue and executes it with the
// server's telemetry context and the effective request timeout. The
// returned error is a *RejectError on admission rejection,
// ErrSaturated/ErrClosed/ErrShutdown on queue rejection or drain abort, the
// waiter's context error on pre-execution cancellation (client disconnect,
// deadline expiry in queue), or fn's own error. Panics escaping fn resolve
// to an ErrWorkerPanic-wrapped error, never a hung connection.
func (s *Server) run(parent context.Context, kind string, priority int, timeout time.Duration, fn func(context.Context) error) error {
	s.reg.Counter("server_requests_total").Add(1)
	tkt, rej := s.admit(kind, priority)
	if rej != nil {
		return rej
	}
	pending, inflight := s.pool.stats()
	s.reg.Gauge("server_queue_pending").Set(int64(pending))
	s.reg.Gauge("server_queue_inflight").Set(int64(inflight))
	var err error
	submitted := time.Now()
	submitErr := s.pool.submit(parent, priority, func() {
		defer tkt.release()
		defer func() {
			if rec := recover(); rec != nil {
				err = fmt.Errorf("%w: %v", ErrWorkerPanic, rec)
			}
		}()
		// The pool worker is the first to know the request's queue wait;
		// stamp it (and the effective priority) onto the request's carrier
		// for the access log and the slow-query journal.
		meta := reqMetaFrom(parent)
		if meta != nil {
			meta.queueWaitNS.Store(time.Since(submitted).Nanoseconds())
			meta.priority.Store(int64(priority))
		}
		ctx := telemetry.NewContext(parent, s.reg)
		lg := s.log
		if id := telemetry.RequestID(parent); id != "" {
			lg = lg.With("request_id", id)
		}
		ctx = telemetry.WithLogger(ctx, lg)
		if timeout <= 0 {
			timeout = s.cfg.RequestTimeout
		}
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		started := time.Now()
		s.cfg.ServerFaults.BeforeExecute()
		err = fn(ctx)
		s.observeCost(kind, meta, time.Since(started))
	})
	if submitErr != nil {
		tkt.release()
		switch {
		case errors.Is(submitErr, ErrSaturated):
			s.countShed("queue_full")
		case errors.Is(submitErr, ErrClosed), errors.Is(submitErr, ErrShutdown):
			s.countShed("shutdown")
		case errors.Is(submitErr, context.DeadlineExceeded):
			s.countShed("deadline")
		}
		return submitErr
	}
	return err
}

// Serve accepts on ln until ctx cancels, then drains: admissions stop,
// in-flight handlers get DrainTimeout to finish, stragglers are cancelled.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	// Request contexts descend from s.base, not ctx: the shutdown signal
	// must stop admissions, not abort work already accepted. base cancels
	// only after the drain window closes.
	defer s.killBase()
	hs := &http.Server{
		Handler:     s.Handler(),
		BaseContext: func(net.Listener) context.Context { return s.base },
	}
	served := make(chan error, 1)
	go func() { served <- hs.Serve(ln) }()
	select {
	case err := <-served:
		return err
	case <-ctx.Done():
	}
	s.log.Info("server draining", "component", "server", "timeout", s.cfg.DrainTimeout)
	s.beginDrain()
	// Drain policy: queued-but-unstarted work is aborted with a terminal
	// shutdown outcome (sync waiters get a 503 "shutdown" envelope, async
	// jobs a terminal status) rather than racing the drain window; in-flight
	// work gets the window to finish. One shared deadline bounds the whole
	// sequence, so a stalled worker can never hold exit past DrainTimeout.
	deadline := time.Now().Add(s.cfg.DrainTimeout)
	if n := s.pool.abortPending(ErrShutdown); n > 0 {
		s.reg.Counter("server_shed_shutdown_total").Add(int64(n))
		s.log.Info("drain aborted queued work", "component", "server", "aborted", n)
	}
	dctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	err := hs.Shutdown(dctx)
	s.killBase()
	if !s.pool.drainWithin(time.Until(deadline)) {
		s.log.Warn("drain timeout: abandoning a stalled worker", "component", "server")
	}
	s.brown.close()
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return nil
}

// ListenAndServe binds addr and calls Serve. The bound address (useful with
// ":0") is reported through onListen when non-nil.
func (s *Server) ListenAndServe(ctx context.Context, addr string, onListen func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if onListen != nil {
		onListen(ln.Addr())
	}
	return s.Serve(ctx, ln)
}
