package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"

	"privanalyzer/internal/api"
	"privanalyzer/internal/core"
	"privanalyzer/internal/programs"
	"privanalyzer/internal/telemetry"

	"net/http"
	"net/http/httptest"
)

// normalize zeroes the wall-clock fields — the only part of the wire form
// that may legitimately differ between runs — and re-encodes. Everything
// else (verdicts, witnesses, state counts) must be byte-identical.
func normalize(t *testing.T, raw []byte) []byte {
	t.Helper()
	var ar api.AnalyzeResponse
	if err := json.Unmarshal(raw, &ar); err != nil {
		t.Fatalf("response is not an AnalyzeResponse: %v\n%s", err, raw)
	}
	for pi := range ar.Phases {
		for qi := range ar.Phases[pi].Queries {
			q := &ar.Phases[pi].Queries[qi]
			q.ElapsedNS = 0
			if q.Stats != nil {
				q.Stats.StatesPerSec = 0
				q.Stats.ElapsedNS = 0
				if c := q.Stats.Cost; c != nil {
					// The ledger's resource fields are wall-clock-class;
					// its counts stay in the comparison.
					c.WallNS, c.CPUNS, c.AllocBytes = 0, 0, 0
				}
			}
		}
	}
	var buf bytes.Buffer
	if err := api.Encode(&buf, &ar); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServingDeterminism pins the serving contract from DESIGN.md: the same
// program analyzed through N concurrent requests against one warm,
// LRU-shared checker returns byte-identical verdicts, witnesses, and state
// counts to the one-shot CLI path (core.AnalyzeContext + api.FromAnalysis +
// api.Encode — exactly what `privanalyzer -json` emits).
func TestServingDeterminism(t *testing.T) {
	// Reference: the one-shot CLI path, fresh checker, no server.
	p, err := programs.ByName("su")
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.AnalyzeContext(context.Background(), p, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var refBuf bytes.Buffer
	if err := api.Encode(&refBuf, api.FromAnalysis(a, false)); err != nil {
		t.Fatal(err)
	}
	ref := normalize(t, refBuf.Bytes())

	reg := telemetry.New()
	s := New(Config{Concurrency: 4, Registry: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	const n = 8
	bodies := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/analyze", `{"program":"su"}`)
			if resp.StatusCode != 200 {
				errs[i] = fmt.Errorf("request %d: status %d: %s", i, resp.StatusCode, body)
				return
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i, body := range bodies {
		if got := normalize(t, body); !bytes.Equal(got, ref) {
			t.Errorf("request %d diverged from the one-shot CLI run:\n--- server ---\n%s\n--- cli ---\n%s",
				i, got, ref)
		}
	}

	// Warm-checker reuse is observable: with 8 requests through one resident
	// checker, the transition cache must have hit (the counter the
	// acceptance criterion names).
	hits := metricValue(t, ts.URL, "rosa_succ_cache_hits_total")
	if hits <= 0 {
		t.Errorf("rosa_succ_cache_hits_total = %d after 8 warm requests, want > 0", hits)
	}
}

// metricValue scrapes one counter from /metrics.
func metricValue(t *testing.T, baseURL, name string) int64 {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	for _, line := range strings.Split(readAll(t, resp), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				t.Fatalf("metric %s: %v", name, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}
