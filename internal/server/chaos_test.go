package server

// Serving-layer chaos: deterministic faults (internal/faultinject.ServerPlan)
// injected into the admission and execution path, plus real saturation
// storms. The contract under test is the robustness story end to end — every
// failure mode resolves to a structured envelope on an open connection, never
// a hang; drain is bounded even against a wedged worker; and load shedding
// never changes the bytes of the work it admits.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"privanalyzer/internal/api"
	"privanalyzer/internal/faultinject"
)

// deadlineBody is queryBody with a per-request deadline_ms bolted on.
func deadlineBody(ms int64) string {
	return queryBody[:len(queryBody)-1] + fmt.Sprintf(`,"search":{"deadline_ms":%d}}`, ms)
}

// priorityBody is queryBody with a queue priority bolted on.
func priorityBody(priority int) string {
	return queryBody[:len(queryBody)-1] + fmt.Sprintf(`,"priority":%d}`, priority)
}

// occupyWorkers parks n pool workers on a gate so the queue backs up
// deterministically. Returns the gate; close it to free the workers.
func occupyWorkers(t *testing.T, s *Server, n int) chan struct{} {
	t.Helper()
	gate := make(chan struct{})
	var running sync.WaitGroup
	running.Add(n)
	for i := 0; i < n; i++ {
		if _, err := s.pool.enqueue(1<<20, func() { running.Done(); <-gate }, nil); err != nil {
			t.Fatalf("occupying worker %d: %v", i, err)
		}
	}
	running.Wait()
	return gate
}

// TestChaosPanicBecomes500Envelope: a panic escaping onto a pool worker must
// answer the waiting client with the uniform 500 envelope — correlation id
// intact — and must not kill the worker for the next request.
func TestChaosPanicBecomes500Envelope(t *testing.T) {
	plan := &faultinject.ServerPlan{PanicAtRequest: 1}
	_, ts := testServer(t, Config{Concurrency: 1, ServerFaults: plan})

	resp, body := postJSON(t, ts.URL+"/v1/query", queryBody)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicked request = %d, want 500: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("500 response lost its X-Request-ID")
	}
	env := decodeError(t, body)
	if env.APIVersion != api.Version {
		t.Errorf("api_version = %q, want %q", env.APIVersion, api.Version)
	}
	if env.Error.Code != api.CodeInternal {
		t.Errorf("code = %q, want %q", env.Error.Code, api.CodeInternal)
	}
	if !strings.Contains(env.Error.Message, "injected handler panic") {
		t.Errorf("message lost the panic value: %q", env.Error.Message)
	}

	// The worker survived the panic: the next request runs normally.
	resp, body = postJSON(t, ts.URL+"/v1/query", queryBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after panic = %d, want 200: %s", resp.StatusCode, body)
	}
}

// TestChaosStalledWorkerNeverBlocksDrain: a worker wedged in a stall that
// ignores cancellation must not hold Close past the drain budget — the
// worker is abandoned, the process exits.
func TestChaosStalledWorkerNeverBlocksDrain(t *testing.T) {
	plan := &faultinject.ServerPlan{StallAtRequest: 1, StallFor: 10 * time.Second}
	s := New(Config{Concurrency: 1, DrainTimeout: 200 * time.Millisecond, ServerFaults: plan})
	go s.run(context.Background(), "query", 0, 0, func(context.Context) error { return nil })
	deadline := time.Now().Add(5 * time.Second)
	for plan.Requests() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled request never started")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	s.Close()
	// Budget: DrainTimeout, the straggler-cancel grace second, scheduling
	// slack. What must NOT happen is waiting out the 10s stall.
	if elapsed := time.Since(start); elapsed > 4*time.Second {
		t.Fatalf("Close took %s against a stalled worker; drain is unbounded", elapsed)
	}
}

// TestChaosQueueFullStorm: an injected queue-full storm answers every victim
// with the structured 503 envelope plus both retry hints, and ends when the
// storm does.
func TestChaosQueueFullStorm(t *testing.T) {
	plan := &faultinject.ServerPlan{RejectSubmits: 2}
	_, ts := testServer(t, Config{Concurrency: 1, ServerFaults: plan})

	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/query", queryBody)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("storm request %d = %d, want 503: %s", i, resp.StatusCode, body)
		}
		env := decodeError(t, body)
		if env.Error.Code != api.CodeQueueFull {
			t.Errorf("storm request %d code = %q, want %q", i, env.Error.Code, api.CodeQueueFull)
		}
		if env.Error.RetryAfterMS <= 0 {
			t.Errorf("storm request %d carries no retry_after_ms", i)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("storm request %d lost the Retry-After header", i)
		}
	}
	resp, body := postJSON(t, ts.URL+"/v1/query", queryBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after storm = %d, want 200: %s", resp.StatusCode, body)
	}
}

// TestChaosCostGateSheds429: with the estimated-cost budget spent by an
// in-flight request, the next one is rejected 429 with retry hints — and
// admitted again once the backlog clears.
func TestChaosCostGateSheds429(t *testing.T) {
	plan := &faultinject.ServerPlan{StallAtRequest: 1, StallFor: 400 * time.Millisecond}
	s, ts := testServer(t, Config{
		Concurrency: 1, MaxQueueCost: time.Millisecond, ServerFaults: plan,
	})

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, body := postJSON(t, ts.URL+"/v1/query", queryBody)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("stalled-but-admitted request = %d, want 200: %s", resp.StatusCode, body)
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for plan.Requests() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never started")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := postJSON(t, ts.URL+"/v1/query", queryBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget request = %d, want 429: %s", resp.StatusCode, body)
	}
	env := decodeError(t, body)
	if env.Error.Code != api.CodeAdmissionRejected {
		t.Errorf("code = %q, want %q", env.Error.Code, api.CodeAdmissionRejected)
	}
	if env.Error.RetryAfterMS <= 0 {
		t.Error("429 carries no retry_after_ms")
	}
	if got := s.reg.Counter("server_shed_cost_total").Value(); got == 0 {
		t.Error("cost shed not counted")
	}

	<-done // backlog clears with the first request's ticket
	resp, body = postJSON(t, ts.URL+"/v1/query", queryBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after backlog cleared = %d, want 200: %s", resp.StatusCode, body)
	}
}

// TestDeadlineExpiresInQueue: a synchronous request whose deadline_ms lapses
// while it is still queued is withdrawn without ever running and answered
// 504 deadline_exceeded.
func TestDeadlineExpiresInQueue(t *testing.T) {
	s, ts := testServer(t, Config{Concurrency: 1})
	gate := occupyWorkers(t, s, 1)
	defer close(gate)

	start := time.Now()
	resp, body := postJSON(t, ts.URL+"/v1/query", deadlineBody(60))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired-in-queue request = %d, want 504: %s", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Errorf("answered after %s — the deadline fired early", elapsed)
	}
	env := decodeError(t, body)
	if env.Error.Code != api.CodeDeadlineExceeded {
		t.Errorf("code = %q, want %q", env.Error.Code, api.CodeDeadlineExceeded)
	}
	if pending, _ := s.pool.stats(); pending != 0 {
		t.Errorf("withdrawn request left %d pending jobs behind", pending)
	}
	if got := s.reg.Counter("server_shed_deadline_total").Value(); got == 0 {
		t.Error("deadline shed not counted")
	}
}

// TestJobDeadlineExpiresInQueue: the async path of the same contract — a
// queued job whose deadline lapses resolves to a terminal 504 outcome
// without running, and its queue slot frees.
func TestJobDeadlineExpiresInQueue(t *testing.T) {
	s, ts := testServer(t, Config{Concurrency: 1})
	gate := occupyWorkers(t, s, 1)
	defer close(gate)

	jr := submitJob(t, ts.URL, `{"query":`+deadlineBody(60)+`}`)
	rec := s.jobs.get(jr.ID)
	if rec == nil {
		t.Fatalf("job %s not resident", jr.ID)
	}
	select {
	case <-rec.done:
	case <-time.After(5 * time.Second):
		t.Fatal("expired job never reached a terminal state")
	}
	_, errInfo := rec.outcome()
	if errInfo == nil || errInfo.Code != api.CodeDeadlineExceeded {
		t.Fatalf("job outcome = %+v, want code %q", errInfo, api.CodeDeadlineExceeded)
	}
	if pending, _ := s.pool.stats(); pending != 0 {
		t.Errorf("expired job left %d pending jobs behind", pending)
	}
}

// TestClientDisconnectFreesQueueSlot: a synchronous client hanging up while
// its request is still queued withdraws the work — the slot frees for the
// next client instead of running for nobody.
func TestClientDisconnectFreesQueueSlot(t *testing.T) {
	s, ts := testServer(t, Config{Concurrency: 1})
	gate := occupyWorkers(t, s, 1)
	defer close(gate)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/query",
		strings.NewReader(queryBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errCh <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if pending, _ := s.pool.stats(); pending == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	cancel() // the client hangs up
	if err := <-errCh; err == nil {
		t.Fatal("cancelled request returned a response")
	}
	for {
		if pending, _ := s.pool.stats(); pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			pending, _ := s.pool.stats()
			t.Fatalf("disconnected client's work still queued (%d pending)", pending)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBrownoutShedsByPriorityClass: at shed-background the admission gate
// rejects the background class only; at emergency everything but high
// priority; /readyz goes not-ready at emergency. The level is set directly —
// the controller's sampling is covered by the brownout tests.
func TestBrownoutShedsByPriorityClass(t *testing.T) {
	s, ts := testServer(t, Config{Concurrency: 1})
	setLevel := func(lvl int) {
		s.brown.mu.Lock()
		s.brown.level = lvl
		s.brown.mu.Unlock()
	}

	setLevel(BrownoutShedBackground)
	resp, body := postJSON(t, ts.URL+"/v1/query", priorityBody(-1))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("background request at shed-bg = %d, want 429: %s", resp.StatusCode, body)
	}
	if env := decodeError(t, body); env.Error.Code != api.CodeAdmissionRejected {
		t.Errorf("code = %q, want %q", env.Error.Code, api.CodeAdmissionRejected)
	}
	if resp, body = postJSON(t, ts.URL+"/v1/query", queryBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("normal request at shed-bg = %d, want 200: %s", resp.StatusCode, body)
	}

	setLevel(BrownoutEmergency)
	if resp, body = postJSON(t, ts.URL+"/v1/query", queryBody); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("normal request at emergency = %d, want 429: %s", resp.StatusCode, body)
	}
	if resp, body = postJSON(t, ts.URL+"/v1/query", priorityBody(1)); resp.StatusCode != http.StatusOK {
		t.Fatalf("high-priority request at emergency = %d, want 200: %s", resp.StatusCode, body)
	}
	ready, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	detail := readAll(t, ready)
	ready.Body.Close()
	if ready.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz at emergency = %d, want 503", ready.StatusCode)
	}
	if !strings.Contains(detail, "emergency") {
		t.Errorf("/readyz detail does not name the brownout level: %q", detail)
	}

	setLevel(BrownoutNormal)
	ready, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	detail = readAll(t, ready)
	ready.Body.Close()
	if ready.StatusCode != http.StatusOK {
		t.Errorf("/readyz after recovery = %d, want 200", ready.StatusCode)
	}
	if !strings.Contains(detail, "brownout 0 (normal)") {
		t.Errorf("/readyz detail lost the brownout line: %q", detail)
	}
}

// TestChaosSaturationStorm is the acceptance storm: queue capacity K, 4K
// concurrent requests against parked workers. Every response must be a
// well-formed envelope (200 or a structured rejection), at least one request
// must be shed, and every admitted verdict must be byte-identical to the
// unloaded path.
func TestChaosSaturationStorm(t *testing.T) {
	const depth = 4
	const storm = 4 * depth
	s, ts := testServer(t, Config{
		Concurrency: 2, QueueDepth: depth, MaxQueueCost: 40 * time.Millisecond,
	})

	// The unloaded baseline the admitted storm responses must match.
	resp, rawBaseline := postJSON(t, ts.URL+"/v1/query", queryBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("baseline = %d: %s", resp.StatusCode, rawBaseline)
	}
	// Byte-identity modulo the wall-clock fields — the same normalization the
	// determinism suite pins for streamed vs synchronous responses.
	baseline := normalizeQuery(t, rawBaseline)

	gate := occupyWorkers(t, s, 2)
	released := false
	defer func() {
		if !released {
			close(gate)
		}
	}()

	type outcome struct {
		status     int
		body       []byte
		jsonType   bool
		retryAfter string
	}
	results := make(chan outcome, storm)
	for i := 0; i < storm; i++ {
		go func() {
			resp, body := postJSON(t, ts.URL+"/v1/query", queryBody)
			results <- outcome{
				status:     resp.StatusCode,
				body:       body,
				jsonType:   strings.HasPrefix(resp.Header.Get("Content-Type"), "application/json"),
				retryAfter: resp.Header.Get("Retry-After"),
			}
		}()
	}

	// Shed responses return immediately; admitted ones block on the gate. At
	// most depth can be queued (and the cost budget admits at most 4), so at
	// least storm-depth rejections arrive before the gate opens.
	var outcomes []outcome
	timeout := time.After(10 * time.Second)
	for len(outcomes) < storm-depth {
		select {
		case o := <-results:
			outcomes = append(outcomes, o)
		case <-timeout:
			t.Fatalf("only %d/%d shed responses arrived with workers parked", len(outcomes), storm-depth)
		}
	}
	close(gate)
	released = true
	for len(outcomes) < storm {
		select {
		case o := <-results:
			outcomes = append(outcomes, o)
		case <-timeout:
			t.Fatalf("only %d/%d responses arrived after release", len(outcomes), storm)
		}
	}

	var ok200, shed int
	for _, o := range outcomes {
		if !o.jsonType {
			t.Fatalf("non-JSON response (status %d): %s", o.status, o.body)
		}
		switch o.status {
		case http.StatusOK:
			ok200++
			if got := normalizeQuery(t, o.body); string(got) != string(baseline) {
				t.Errorf("admitted verdict differs from the unloaded path:\nloaded:   %s\nunloaded: %s", got, baseline)
			}
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			shed++
			env := decodeError(t, o.body)
			if env.APIVersion != api.Version {
				t.Errorf("shed envelope api_version = %q", env.APIVersion)
			}
			if env.Error.Code != api.CodeAdmissionRejected && env.Error.Code != api.CodeQueueFull {
				t.Errorf("shed code = %q, want admission_rejected or queue_full", env.Error.Code)
			}
			if env.Error.RetryAfterMS <= 0 || o.retryAfter == "" {
				t.Errorf("shed response missing retry hints: retry_after_ms=%d header=%q",
					env.Error.RetryAfterMS, o.retryAfter)
			}
		default:
			t.Errorf("storm response status %d is outside the contract: %s", o.status, o.body)
		}
	}
	if shed == 0 {
		t.Error("storm shed nothing; the gates are not engaging")
	}
	if ok200 == 0 {
		t.Error("storm admitted nothing; shedding is total")
	}
}

// TestServeDrainsUnderSaturation: SIGTERM (ctx cancel) while the queue is
// full, a worker is wedged, and the brownout controller is engaged. Serve
// must stop admissions, resolve every queued-unstarted job to a terminal
// shutdown outcome, and return nil within the drain budget.
func TestServeDrainsUnderSaturation(t *testing.T) {
	s := New(Config{
		Concurrency: 1, QueueDepth: 8,
		DrainTimeout: 500 * time.Millisecond,
		Brownout:     BrownoutConfig{QueueHigh: 1, Interval: 5 * time.Millisecond, Hold: 1 << 20},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	gate := occupyWorkers(t, s, 1)
	defer close(gate)
	var jobs []*jobRecord
	for i := 0; i < 3; i++ {
		jr := submitJob(t, base, `{"query":`+queryBody+`}`)
		rec := s.jobs.get(jr.ID)
		if rec == nil {
			t.Fatalf("job %s not resident", jr.ID)
		}
		jobs = append(jobs, rec)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.brown.Level() < BrownoutShedBackground {
		if time.Now().After(deadline) {
			t.Fatal("brownout never engaged before drain")
		}
		time.Sleep(time.Millisecond)
	}

	start := time.Now()
	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve under saturation = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve never returned; drain is unbounded")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("drain took %s against a 500ms budget", elapsed)
	}
	for i, rec := range jobs {
		if got := rec.currentStatus(); got != api.JobDone {
			t.Errorf("queued job %d status = %q after drain, want %q", i, got, api.JobDone)
			continue
		}
		if _, errInfo := rec.outcome(); errInfo == nil || errInfo.Code != api.CodeShutdown {
			t.Errorf("queued job %d outcome = %+v, want code %q", i, errInfo, api.CodeShutdown)
		}
	}
	if got := s.reg.Counter("server_shed_shutdown_total").Value(); got < 3 {
		t.Errorf("server_shed_shutdown_total = %d, want ≥ 3", got)
	}
}
