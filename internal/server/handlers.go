package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"

	"privanalyzer/internal/api"
	"privanalyzer/internal/cmdutil"
	"privanalyzer/internal/core"
	"privanalyzer/internal/obs"
	"privanalyzer/internal/programs"
)

// maxBodyBytes bounds request bodies; program names and query files are
// small, so anything larger is a client error.
const maxBodyBytes = 1 << 20

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.instrument("analyze", s.handleAnalyze))
	mux.HandleFunc("POST /v1/query", s.instrument("query", s.handleQuery))
	mux.HandleFunc("GET /v1/programs", s.instrument("programs", s.handlePrograms))
	mux.HandleFunc("GET /v1/version", s.instrument("version", s.handleVersion))
	mux.HandleFunc("POST /v1/jobs", s.instrument("jobs", s.handleJobSubmit))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument("job_status", s.handleJobStatus))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.instrument("job_events", s.handleJobEvents))
	mux.HandleFunc("GET /v1/slowlog", s.instrument("slowlog", s.handleSlowLog))
	mux.HandleFunc("GET /v1/metrics.json", s.instrument("metrics_json", s.handleMetricsJSON))
	RegisterDiagnostics(mux, s.reg, s.ReadyDetail)
	return mux
}

// writeJSON writes v through api.Encode — the CLI's encoder — so server
// bytes and CLI bytes for equal values are identical.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	if err := api.Encode(w, v); err != nil {
		s.log.Warn("response write failed", "component", "server", "error", err)
	}
}

// writeError writes the uniform error envelope.
func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string) {
	s.writeErrorDetail(w, status, api.ErrorDetail{Code: code, Message: msg})
}

// writeErrorDetail writes the uniform versioned error envelope from a
// prebuilt detail, mirroring any retry hint onto the Retry-After header
// (whole seconds, rounded up) for clients that speak plain HTTP rather than
// the JSON body's millisecond-precision retry_after_ms.
func (s *Server) writeErrorDetail(w http.ResponseWriter, status int, det api.ErrorDetail) {
	s.reg.Counter("server_errors_total").Add(1)
	if det.RetryAfterMS > 0 {
		w.Header().Set("Retry-After", strconv.FormatInt((det.RetryAfterMS+999)/1000, 10))
	}
	s.writeJSON(w, status, api.ErrorV1{APIVersion: api.Version, Error: det})
}

// decode strictly unmarshals the request body into v: unknown fields are
// schema violations, not noise to ignore — the wire types are versioned.
func decode(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// errorDetailForRun maps an execution failure to its HTTP status and wire
// detail — shared by the synchronous response path and the job outcome. The
// mapping is the stable part of the error contract: one code per failure
// class, pinned by the envelope golden test.
func (s *Server) errorDetailForRun(err error) (int, api.ErrorDetail) {
	var rej *RejectError
	switch {
	case errors.As(err, &rej):
		return rej.Status, api.ErrorDetail{
			Code: rej.Code, Message: rej.Message,
			RetryAfterMS: rej.RetryAfter.Milliseconds(),
		}
	case errors.Is(err, ErrShutdown), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable,
			api.ErrorDetail{Code: api.CodeShutdown, Message: err.Error()}
	case errors.Is(err, ErrSaturated):
		return http.StatusServiceUnavailable, api.ErrorDetail{
			Code: api.CodeQueueFull, Message: err.Error(),
			RetryAfterMS: s.retryAfter().Milliseconds(),
		}
	case errors.Is(err, context.DeadlineExceeded):
		// The deadline expired while the request was still queued; work
		// already running resolves through the engine's ⏱ path instead.
		return http.StatusGatewayTimeout, api.ErrorDetail{
			Code: api.CodeDeadlineExceeded, Message: "deadline expired before the request ran",
		}
	case errors.Is(err, context.Canceled):
		// The client went away while the work was queued (or the drain
		// window closed under a job); the envelope is best-effort.
		return http.StatusServiceUnavailable,
			api.ErrorDetail{Code: api.CodeCanceled, Message: "request cancelled before execution"}
	default:
		return http.StatusInternalServerError,
			api.ErrorDetail{Code: api.CodeInternal, Message: err.Error()}
	}
}

// runError maps a run() failure to its HTTP response.
func (s *Server) runError(w http.ResponseWriter, err error) {
	status, det := s.errorDetailForRun(err)
	s.writeErrorDetail(w, status, det)
}

// requestError is a pre-admission validation failure: status + envelope.
type requestError struct {
	status int
	code   string
	msg    string
}

func badRequest(err error) *requestError {
	return &requestError{status: http.StatusBadRequest, code: api.CodeBadRequest, msg: err.Error()}
}

// prepared is an admitted request, validated and bound to its checker,
// ready to run on a pool worker. The synchronous endpoints and the async
// jobs subsystem both execute through prepared.run — the one code path from
// request to response value — which is what makes a job's terminal result
// frame byte-identical to the synchronous endpoint's body. The observer
// (nil on the sync path) adds recording and progress streaming without
// touching search semantics.
type prepared struct {
	kind     string // "analyze" or "query"
	priority int
	timeout  time.Duration
	// deadline is the request's total budget measured from admission —
	// queue wait counts against it, unlike timeout, which starts at worker
	// pickup. Clamped by Config.MaxDeadline; 0 = none.
	deadline time.Duration
	run      func(ctx context.Context, watch *jobObserver) (any, error)
}

// effectiveDeadline clamps the request's deadline_ms to the server cap:
// asking for more than -max-deadline (or for nothing, when a cap is set)
// yields the cap.
func (s *Server) effectiveDeadline(p api.SearchParams) time.Duration {
	d := time.Duration(p.DeadlineMS) * time.Millisecond
	if s.cfg.MaxDeadline > 0 && (d <= 0 || d > s.cfg.MaxDeadline) {
		d = s.cfg.MaxDeadline
	}
	if d < 0 {
		d = 0
	}
	return d
}

// prepareAnalyze validates an analyze request and binds it to the program's
// LRU-resident checker.
func (s *Server) prepareAnalyze(req api.AnalyzeRequest) (*prepared, *requestError) {
	if req.Program == "" {
		return nil, &requestError{status: http.StatusBadRequest, code: api.CodeBadRequest, msg: "program is required"}
	}
	p, err := programs.ByName(req.Program)
	if err != nil {
		return nil, &requestError{status: http.StatusNotFound, code: api.CodeNotFound, msg: err.Error()}
	}
	req.Search = req.Search.OrDefaults(s.cfg.DefaultSearch)
	opts, err := req.CoreOptions()
	if err != nil {
		return nil, badRequest(err)
	}
	opts.Checker = s.checkers.get(p.Name)
	if s.cfg.SearchFaults != nil {
		opts.Search.Faults = s.cfg.SearchFaults
	}
	s.reg.Gauge("server_checkers_resident").Set(int64(s.checkers.len()))
	return &prepared{
		kind:     "analyze",
		priority: req.Priority,
		timeout:  req.Search.Timeout.Std(),
		deadline: s.effectiveDeadline(req.Search),
		run: func(ctx context.Context, watch *jobObserver) (any, error) {
			o := opts
			watch.attach(&o.Search)
			// Brownout degrade-search: force the escalation ladder to start
			// low, so each admitted search proves it needs budget before it
			// gets budget. Meaningless without a ladder (no_escalate).
			if s.degradeSearch() && !o.Search.NoEscalate {
				o.Search.Escalate.Start = clampEscalateStart(o.Search.Escalate.Start)
			}
			a, err := core.AnalyzeContext(ctx, p, o)
			if err != nil {
				return nil, err
			}
			s.recordSlow(ctx, "analyze", p.Name, analysisVerdicts(a), analysisCost(a))
			return api.FromAnalysis(a, req.Search.Stats), nil
		},
	}, nil
}

// prepareQuery validates a standalone query request. Ad-hoc queries share
// one checker per extension flag (held in the LRU under reserved keys no
// program name can collide with), so repeat queries amortize like repeat
// analyses.
func (s *Server) prepareQuery(req api.QueryRequest) (*prepared, *requestError) {
	req.Search = req.Search.OrDefaults(s.cfg.DefaultSearch)
	q, desc, err := req.Build()
	if err != nil {
		return nil, badRequest(err)
	}
	key := "\x00adhoc"
	if q.Extended {
		key = "\x00adhoc-ext"
	}
	checker := s.checkers.get(key)
	if s.cfg.SearchFaults != nil {
		q.Options.Faults = s.cfg.SearchFaults
	}
	s.reg.Gauge("server_checkers_resident").Set(int64(s.checkers.len()))
	return &prepared{
		kind:     "query",
		priority: req.Priority,
		timeout:  req.Search.Timeout.Std(),
		deadline: s.effectiveDeadline(req.Search),
		run: func(ctx context.Context, watch *jobObserver) (any, error) {
			watch.attach(&q.Options)
			if s.degradeSearch() && !q.Options.NoEscalate {
				q.Options.Escalate.Start = clampEscalateStart(q.Options.Escalate.Start)
			}
			res, err := checker.Run(ctx, q)
			if err != nil {
				return nil, err
			}
			if res.Stats != nil {
				s.recordSlow(ctx, "query", desc, res.Verdict.String(), res.Stats.Cost)
			}
			return api.QueryResponse{
				APIVersion:  api.Version,
				Description: desc,
				Result:      api.FromResult(req.Attack, res, req.Search.Stats),
			}, nil
		},
	}, nil
}

// serveSync runs a prepared request through admission and the pool and
// writes the response — the synchronous endpoints' tail. The search context
// derives from r.Context(), so a client disconnect withdraws queued work and
// cancels running work; the request deadline (when set) starts here, at
// admission, so queue wait counts against it and an expired-in-queue request
// is withdrawn without ever running.
func (s *Server) serveSync(w http.ResponseWriter, r *http.Request, p *prepared) {
	ctx := r.Context()
	if p.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.deadline)
		defer cancel()
	}
	var resp any
	err := s.run(ctx, p.kind, p.priority, p.timeout, func(ctx context.Context) error {
		v, err := p.run(ctx, nil)
		resp = v
		return err
	})
	if err != nil {
		s.runError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleAnalyze runs the full pipeline for one modeled program on the
// pool, against the program's LRU-resident checker.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req api.AnalyzeRequest
	if err := decode(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	p, perr := s.prepareAnalyze(req)
	if perr != nil {
		s.writeError(w, perr.status, perr.code, perr.msg)
		return
	}
	s.serveSync(w, r, p)
}

// handleQuery runs one standalone ROSA query.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req api.QueryRequest
	if err := decode(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	p, perr := s.prepareQuery(req)
	if perr != nil {
		s.writeError(w, perr.status, perr.code, perr.msg)
		return
	}
	s.serveSync(w, r, p)
}

// analysisCost sums the cost vectors of every query an analysis ran. Nil
// when no query carried one (the request disabled the ledger).
func analysisCost(a *core.Analysis) *obs.QueryCost {
	var total *obs.QueryCost
	for i := range a.Phases {
		for _, st := range a.Phases[i].Stats {
			if st == nil || st.Cost == nil {
				continue
			}
			if total == nil {
				total = &obs.QueryCost{}
			}
			total.Add(st.Cost)
		}
	}
	return total
}

// analysisVerdicts renders an analysis's verdict grid as one glyph string in
// grid order (phases outer, attacks inner) — the slowlog's compact outcome
// summary.
func analysisVerdicts(a *core.Analysis) string {
	var b strings.Builder
	for i := range a.Phases {
		for _, v := range a.Phases[i].Verdicts {
			if v == 0 {
				continue // attack not run
			}
			b.WriteString(v.String())
		}
	}
	return b.String()
}

// handleSlowLog reports the top-K costliest requests since boot, costliest
// first. GET /v1/slowlog[?n=]. The journal is observational: reading it
// never touches the pool, so it stays responsive while the queue is
// saturated — exactly when an operator wants it.
func (s *Server) handleSlowLog(w http.ResponseWriter, r *http.Request) {
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 1 {
			s.writeError(w, http.StatusBadRequest, api.CodeBadRequest,
				"n must be a positive integer")
			return
		}
		n = parsed
	}
	entries, admitted := s.slow.snapshot(n)
	resp := api.SlowLogResponse{
		APIVersion: api.Version,
		Capacity:   s.slow.capacity,
		Admitted:   admitted,
		Entries:    make([]api.SlowQuery, len(entries)),
	}
	for i, e := range entries {
		resp.Entries[i] = api.SlowQuery{
			Seq:         e.seq,
			Time:        e.time.UTC().Format(time.RFC3339Nano),
			Kind:        e.kind,
			Label:       e.label,
			RequestID:   e.requestID,
			Priority:    e.priority,
			QueueWaitNS: e.queueWaitNS,
			Verdicts:    e.verdicts,
			Cost:        *api.FromQueryCost(&e.cost),
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleMetricsJSON reports the telemetry registry as JSON — the same
// snapshot path the Prometheus text endpoint renders, typed for consumers
// without a Prometheus parser. GET /v1/metrics.json.
func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	s.reg.SampleProcess()
	snap := s.reg.Snapshot()
	resp := api.MetricsResponse{
		APIVersion: api.Version,
		Counters:   snap.Counters,
		Gauges:     snap.Gauges,
		Histograms: make(map[string]api.HistogramV1, len(snap.Histograms)),
	}
	for name, h := range snap.Histograms {
		resp.Histograms[name] = api.HistogramV1{
			Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max,
			Mean: h.Mean, P50: h.P50, P95: h.P95, P99: h.P99,
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleVersion reports the binary's build identity. GET /v1/version.
func (s *Server) handleVersion(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, api.VersionResponse{
		APIVersion:  api.Version,
		VersionInfo: cmdutil.Version(),
	})
}

// handlePrograms lists the modeled programs /v1/analyze accepts.
func (s *Server) handlePrograms(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, api.ProgramsResponse{
		APIVersion: api.Version,
		Programs:   programs.Names(),
	})
}
