package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"privanalyzer/internal/api"
	"privanalyzer/internal/core"
	"privanalyzer/internal/programs"
)

// maxBodyBytes bounds request bodies; program names and query files are
// small, so anything larger is a client error.
const maxBodyBytes = 1 << 20

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("GET /v1/programs", s.handlePrograms)
	RegisterDiagnostics(mux, s.reg, s.Ready)
	return mux
}

// writeJSON writes v through api.Encode — the CLI's encoder — so server
// bytes and CLI bytes for equal values are identical.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	if err := api.Encode(w, v); err != nil {
		s.log.Warn("response write failed", "component", "server", "error", err)
	}
}

// writeError writes the uniform error envelope.
func (s *Server) writeError(w http.ResponseWriter, status int, code, msg string) {
	s.reg.Counter("server_errors_total").Add(1)
	s.writeJSON(w, status, api.ErrorResponse{Error: api.ErrorDetail{Code: code, Message: msg}})
}

// decode strictly unmarshals the request body into v: unknown fields are
// schema violations, not noise to ignore — the wire types are versioned.
func decode(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// runError maps a run() failure to its HTTP response.
func (s *Server) runError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrSaturated), errors.Is(err, ErrClosed):
		s.writeError(w, http.StatusServiceUnavailable, api.CodeSaturated, err.Error())
	case errors.Is(err, context.Canceled):
		// The client went away while the job was queued; the envelope is
		// best-effort (nobody may read it).
		s.writeError(w, http.StatusServiceUnavailable, api.CodeCanceled, "request cancelled before execution")
	default:
		s.writeError(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
	}
}

// handleAnalyze runs the full pipeline for one modeled program on the
// pool, against the program's LRU-resident checker.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req api.AnalyzeRequest
	if err := decode(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	if req.Program == "" {
		s.writeError(w, http.StatusBadRequest, api.CodeBadRequest, "program is required")
		return
	}
	p, err := programs.ByName(req.Program)
	if err != nil {
		s.writeError(w, http.StatusNotFound, api.CodeNotFound, err.Error())
		return
	}
	req.Search = req.Search.OrDefaults(s.cfg.DefaultSearch)
	opts, err := req.CoreOptions()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	opts.Checker = s.checkers.get(p.Name)
	s.reg.Gauge("server_checkers_resident").Set(int64(s.checkers.len()))

	var resp *api.AnalyzeResponse
	err = s.run(r.Context(), req.Priority, req.Search.Timeout.Std(), func(ctx context.Context) error {
		a, err := core.AnalyzeContext(ctx, p, opts)
		if err != nil {
			return err
		}
		resp = api.FromAnalysis(a, req.Search.Stats)
		return nil
	})
	if err != nil {
		s.runError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleQuery runs one standalone ROSA query. Ad-hoc queries share one
// checker per extension flag (held in the LRU under reserved keys no
// program name can collide with), so repeat queries amortize like repeat
// analyses.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req api.QueryRequest
	if err := decode(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	req.Search = req.Search.OrDefaults(s.cfg.DefaultSearch)
	q, desc, err := req.Build()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	key := "\x00adhoc"
	if q.Extended {
		key = "\x00adhoc-ext"
	}
	checker := s.checkers.get(key)
	s.reg.Gauge("server_checkers_resident").Set(int64(s.checkers.len()))

	var resp api.QueryResponse
	err = s.run(r.Context(), req.Priority, req.Search.Timeout.Std(), func(ctx context.Context) error {
		res, err := checker.Run(ctx, q)
		if err != nil {
			return err
		}
		resp = api.QueryResponse{
			APIVersion:  api.Version,
			Description: desc,
			Result:      api.FromResult(req.Attack, res, req.Search.Stats),
		}
		return nil
	})
	if err != nil {
		s.runError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handlePrograms lists the modeled programs /v1/analyze accepts.
func (s *Server) handlePrograms(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, api.ProgramsResponse{
		APIVersion: api.Version,
		Programs:   programs.Names(),
	})
}
