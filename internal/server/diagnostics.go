package server

import (
	"fmt"
	"net/http"
	"net/http/pprof"

	"privanalyzer/internal/telemetry"
)

// RegisterDiagnostics installs the operational endpoints the binaries
// share on mux: net/http/pprof under /debug/pprof/, /healthz (process
// liveness, always 200), /readyz (readiness: "ok" plus the detail line
// while ready, 503 with the reason and detail otherwise; a nil ready means
// always ready), and /metrics (the registry in Prometheus text exposition
// format; an empty document when reg is nil). privanalyzer's -pprof
// listener and privanalyzerd's main mux both route through here, so the
// probe surface is identical everywhere.
func RegisterDiagnostics(mux *http.ServeMux, reg *telemetry.Registry, ready func() (string, error)) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ok := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	}
	mux.HandleFunc("/healthz", ok)
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		detail := ""
		if ready != nil {
			var err error
			detail, err = ready()
			if err != nil {
				msg := err.Error()
				if detail != "" {
					msg += "\n" + detail
				}
				http.Error(w, msg, http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
		if detail != "" {
			fmt.Fprintln(w, detail)
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg == nil {
			return
		}
		// Refresh the process gauges and runtime histogram deltas (GC
		// pauses, sched latency) so every scrape carries current process
		// health, not boot-time values.
		reg.SampleProcess()
		if err := reg.WriteProm(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
