// Async jobs: the observable half of the serving surface. A synchronous
// endpoint holds the connection until the verdict lands; a job admits the
// same request through the same priority queue, acknowledges immediately,
// and makes the run observable while it happens — status + queue position on
// GET /v1/jobs/{id}, and a live Server-Sent-Events feed on
// GET /v1/jobs/{id}/events carrying progress snapshots (Options.OnStats),
// throttled flight-recorder events (level_start, goal_matched, degraded,
// escalated), and a terminal result frame byte-identical to the synchronous
// endpoint's envelope (both encode the same prepared request through
// api.Encode; the determinism suite pins it).
//
// Lifecycle: queued → running → done. The job runs under the server's base
// context, not any HTTP request's — a watcher dropping its stream must not
// cancel the work others may be watching. Finished jobs stay resident (ring
// of jobHistory) so late subscribers replay the terminal frames; the oldest
// done job is evicted when the ring fills.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"privanalyzer/internal/api"
	"privanalyzer/internal/rewrite"
	"privanalyzer/internal/telemetry"
)

// jobHistory bounds resident jobs (queued + running + done). Admission past
// the bound evicts the oldest finished job; with nothing evictable the
// submission is rejected 503 like a full queue.
const jobHistory = 256

// levelStartThrottle is the per-subscriber floor between level_start frames:
// deep searches start thousands of levels a second and a stream wants the
// shape, not the firehose. Goal matches, degradations, and escalation rungs
// are never throttled.
const levelStartThrottle = 100 * time.Millisecond

// streamKinds are the recorder kinds a job's sink forwards to subscribers.
var streamKinds = []telemetry.EventKind{
	telemetry.EvLevelStart, telemetry.EvGoalMatched,
	telemetry.EvDegraded, telemetry.EvEscalated,
}

// jobRecord is one job's server-side state. The recorder and sink are
// per-job: journals and streams never mix jobs.
type jobRecord struct {
	id        string
	kind      string // "analyze" or "query"
	requestID string
	created   time.Time
	rec       *telemetry.Recorder
	sink      *telemetry.EventSink

	mu      sync.Mutex
	pooled  *job // queue handle while pending (position); nil after pickup
	waitNS  int64
	status  string
	stats   *api.SearchStats
	statsCh chan struct{} // closed and replaced on every stats update
	result  []byte        // terminal envelope bytes (api.Encode) on success
	errInfo *api.ErrorDetail
	errHTTP int

	// deadline is the job's absolute expiry (zero = none); dlTimer is the
	// in-queue withdrawal timer, stopped once a worker picks the job up
	// (the execution context's deadline takes over).
	deadline time.Time
	dlTimer  *time.Timer

	done chan struct{}
}

// setDeadline records the job's absolute expiry and its in-queue timer.
func (j *jobRecord) setDeadline(at time.Time, t *time.Timer) {
	j.mu.Lock()
	j.deadline = at
	j.dlTimer = t
	j.mu.Unlock()
}

// deadlineAt returns the job's absolute expiry, stopping the in-queue timer
// — the moment a worker owns the job, expiry is the context's business.
func (j *jobRecord) deadlineAt() time.Time {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dlTimer != nil {
		j.dlTimer.Stop()
		j.dlTimer = nil
	}
	return j.deadline
}

func newJobRecord(kind, requestID string) *jobRecord {
	rec := telemetry.NewRecorder(0)
	sink := telemetry.NewEventSink()
	rec.SetSink(sink, streamKinds...)
	return &jobRecord{
		id:        "j-" + newRequestID(),
		kind:      kind,
		requestID: requestID,
		created:   time.Now(),
		rec:       rec,
		sink:      sink,
		status:    api.JobQueued,
		statsCh:   make(chan struct{}),
		done:      make(chan struct{}),
	}
}

func (j *jobRecord) setPooled(p *job) {
	j.mu.Lock()
	j.pooled = p
	j.mu.Unlock()
}

// setRunning flips the job to running and records its queue wait from the
// pool handle. A job picked up before setPooled lands reads wait 0 — the
// queue was empty, so the wait truly was ~0.
func (j *jobRecord) setRunning() {
	j.mu.Lock()
	j.status = api.JobRunning
	if j.pooled != nil {
		j.waitNS = time.Since(j.pooled.enqueuedAt).Nanoseconds()
	}
	j.pooled = nil
	j.mu.Unlock()
}

// setStats stores the latest progress snapshot and wakes status watchers.
// OnStats may fire from any goroutine (parallel analyses run many searches).
func (j *jobRecord) setStats(st *api.SearchStats) {
	j.mu.Lock()
	j.stats = st
	close(j.statsCh)
	j.statsCh = make(chan struct{})
	j.mu.Unlock()
}

// statsChan returns a channel that closes on the next stats update; callers
// re-fetch after each wakeup.
func (j *jobRecord) statsChan() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statsCh
}

func (j *jobRecord) latestStats() *api.SearchStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stats
}

// finish records the terminal outcome — envelope bytes on success, the error
// detail plus its HTTP status otherwise — and releases every waiter. The
// first terminal outcome wins: a deadline withdrawal and the worker racing
// to resolve the same job must not double-close done.
func (j *jobRecord) finish(result []byte, httpStatus int, errInfo *api.ErrorDetail) {
	j.mu.Lock()
	if j.status == api.JobDone {
		j.mu.Unlock()
		return
	}
	j.status = api.JobDone
	j.result = result
	j.errInfo = errInfo
	j.errHTTP = httpStatus
	j.mu.Unlock()
	close(j.done)
}

// outcome returns the terminal envelope or error; valid only after done.
func (j *jobRecord) outcome() (result []byte, errInfo *api.ErrorDetail) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.errInfo
}

func (j *jobRecord) currentStatus() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// jobRegistry holds resident jobs in insertion order for bounded eviction.
type jobRegistry struct {
	mu    sync.Mutex
	jobs  map[string]*jobRecord
	order []*jobRecord
}

func newJobRegistry() *jobRegistry {
	return &jobRegistry{jobs: make(map[string]*jobRecord)}
}

// add admits j, evicting the oldest finished job when the ring is full.
// Reports false when every resident job is still live — the jobs analogue of
// queue saturation.
func (r *jobRegistry) add(j *jobRecord) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.order) >= jobHistory {
		evicted := false
		for i, old := range r.order {
			if old.currentStatus() == api.JobDone {
				delete(r.jobs, old.id)
				r.order = append(r.order[:i], r.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return false
		}
	}
	r.jobs[j.id] = j
	r.order = append(r.order, j)
	return true
}

// remove withdraws a job that failed to enqueue.
func (r *jobRegistry) remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok {
		return
	}
	delete(r.jobs, id)
	for i, o := range r.order {
		if o == j {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
}

func (r *jobRegistry) get(id string) *jobRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.jobs[id]
}

func (r *jobRegistry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}

// jobObserver hooks a prepared request's search options up to a job's
// recorder and stats feed. A nil observer (the synchronous endpoints) leaves
// the options untouched, which is what keeps sync and job responses
// byte-identical: the observer only adds observation, never search behavior.
type jobObserver struct {
	rec      *telemetry.Recorder
	interval time.Duration
	onStats  func(*rewrite.SearchStats)
}

// attach wires the observer into opts. Chains an existing OnStats rather
// than replacing it.
func (o *jobObserver) attach(opts *rewrite.Options) {
	if o == nil {
		return
	}
	opts.Recorder = o.rec
	opts.StatsInterval = o.interval
	prev := opts.OnStats
	sink := o.onStats
	opts.OnStats = func(st *rewrite.SearchStats) {
		if prev != nil {
			prev(st)
		}
		sink(st)
	}
}

// handleJobSubmit admits an analyze/query request as an async job.
// POST /v1/jobs → 202 with the job's id and URLs.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req api.JobRequest
	if err := decode(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, api.CodeBadRequest, err.Error())
		return
	}
	if (req.Analyze == nil) == (req.Query == nil) {
		s.writeError(w, http.StatusBadRequest, api.CodeBadRequest,
			"exactly one of analyze or query must be set")
		return
	}
	var p *prepared
	var perr *requestError
	if req.Analyze != nil {
		p, perr = s.prepareAnalyze(*req.Analyze)
	} else {
		p, perr = s.prepareQuery(*req.Query)
	}
	if perr != nil {
		s.writeError(w, perr.status, perr.code, perr.msg)
		return
	}
	s.reg.Counter("server_requests_total").Add(1)
	tkt, rej := s.admit(p.kind, p.priority)
	if rej != nil {
		s.runError(w, rej)
		return
	}

	j := newJobRecord(p.kind, telemetry.RequestID(r.Context()))
	if !s.jobs.add(j) {
		tkt.release()
		s.countShed("queue_full")
		s.writeErrorDetail(w, http.StatusServiceUnavailable, api.ErrorDetail{
			Code:         api.CodeQueueFull,
			Message:      "job registry full: all resident jobs still running",
			RetryAfterMS: s.retryAfter().Milliseconds(),
		})
		return
	}
	// onAbort resolves a job the drain policy or a deadline withdrew before
	// any worker owned it: a terminal status with the matching error code —
	// never silence. Bound at enqueue so an abort cannot race past it.
	pooled, err := s.pool.enqueue(p.priority, func() { s.execJob(j, p, tkt) }, func(aerr error) {
		tkt.release()
		status, det := s.errorDetailForRun(aerr)
		s.reg.Counter("server_errors_total").Add(1)
		j.finish(nil, status, &det)
		j.sink.Close()
	})
	if err != nil {
		tkt.release()
		s.jobs.remove(j.id)
		if errors.Is(err, ErrClosed) {
			s.countShed("shutdown")
		} else {
			s.countShed("queue_full")
		}
		s.runError(w, err)
		return
	}
	j.setPooled(pooled)
	if p.deadline > 0 {
		// In-queue expiry: withdraw the job and resolve it 504 without ever
		// running. Once a worker picks it up, deadlineAt stops this timer
		// and the execution context's deadline takes over.
		at := time.Now().Add(p.deadline)
		timer := time.AfterFunc(p.deadline, func() {
			if s.pool.withdraw(pooled) {
				s.countShed("deadline")
				pooled.abort(context.DeadlineExceeded)
			}
		})
		j.setDeadline(at, timer)
	}
	s.reg.Counter("server_jobs_total").Add(1)
	s.reg.Gauge("server_jobs_resident").Set(int64(s.jobs.len()))
	pending, inflight := s.pool.stats()
	s.reg.Gauge("server_queue_pending").Set(int64(pending))
	s.reg.Gauge("server_queue_inflight").Set(int64(inflight))

	s.writeJSON(w, http.StatusAccepted, api.JobResponse{
		APIVersion: api.Version,
		ID:         j.id,
		Status:     j.currentStatus(),
		RequestID:  j.requestID,
		StatusURL:  "/v1/jobs/" + j.id,
		EventsURL:  "/v1/jobs/" + j.id + "/events",
	})
}

// execJob runs a prepared request on a pool worker with the job's observer
// attached, then stores the terminal envelope. Runs under the server's base
// context (plus the effective request timeout and any remaining deadline),
// so watchers' disconnects never cancel it; the drain deadline does. The
// admission ticket releases here — the job's terminal state.
func (s *Server) execJob(j *jobRecord, p *prepared, tkt *ticket) {
	defer tkt.release()
	j.setRunning()
	ctx := telemetry.NewContext(s.base, s.reg)
	// Jobs descend from the server base, not the submitting request, so they
	// carry their own observability meta (queue wait, priority) for the
	// slow-query journal.
	ctx, meta := withReqMeta(ctx)
	j.mu.Lock()
	meta.queueWaitNS.Store(j.waitNS)
	j.mu.Unlock()
	meta.priority.Store(int64(p.priority))
	lg := s.log.With("job", j.id)
	if j.requestID != "" {
		lg = lg.With("request_id", j.requestID)
		ctx = telemetry.WithRequestID(ctx, j.requestID)
	}
	ctx = telemetry.WithLogger(ctx, lg)
	if at := j.deadlineAt(); !at.IsZero() {
		// The admission-relative deadline survives queue wait: whatever
		// remains bounds execution through the engine's ⏱ path.
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, at)
		defer cancel()
	}
	timeout := p.timeout
	if timeout <= 0 {
		timeout = s.cfg.RequestTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	watch := &jobObserver{
		rec:      j.rec,
		interval: s.cfg.JobStatsInterval,
		onStats:  func(st *rewrite.SearchStats) { j.setStats(api.FromSearchStats(st)) },
	}
	started := time.Now()
	v, err := func() (v any, err error) {
		// A panic escaping the engine's own isolation resolves the job with
		// a terminal internal error — the SSE stream ends with an error
		// frame, not silence, and the worker survives.
		defer func() {
			if rec := recover(); rec != nil {
				err = fmt.Errorf("%w: %v", ErrWorkerPanic, rec)
			}
		}()
		s.cfg.ServerFaults.BeforeExecute()
		return p.run(ctx, watch)
	}()
	s.observeCost(p.kind, meta, time.Since(started))
	var buf bytes.Buffer
	if err == nil {
		err = api.Encode(&buf, v)
	}
	if err != nil {
		status, det := s.errorDetailForRun(err)
		s.reg.Counter("server_errors_total").Add(1)
		lg.Warn("job failed", "component", "server", "kind", j.kind, "error", err)
		j.finish(nil, status, &det)
	} else {
		lg.Info("job done", "component", "server", "kind", j.kind, "elapsed", time.Since(j.created))
		j.finish(buf.Bytes(), 0, nil)
	}
	// The stream is over: subscribers drain their rings and see the feed
	// end. Journal truncation and stream drops both surface on the shared
	// counter the /metrics satellite names.
	j.sink.Close()
	if drops := j.rec.Dropped() + j.sink.Dropped(); drops > 0 {
		s.reg.Counter("rosa_recorder_dropped_events_total").Add(drops)
	}
}

// handleJobStatus reports a job's state. GET /v1/jobs/{id}.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		s.writeError(w, http.StatusNotFound, api.CodeNotFound, "no such job")
		return
	}
	j.mu.Lock()
	resp := api.JobStatusResponse{
		APIVersion:    api.Version,
		ID:            j.id,
		Status:        j.status,
		Kind:          j.kind,
		RequestID:     j.requestID,
		Stats:         j.stats,
		DroppedEvents: j.sink.Dropped(),
		Error:         j.errInfo,
	}
	pooled := j.pooled
	j.mu.Unlock()
	if resp.Status == api.JobQueued && pooled != nil {
		resp.QueuePosition = s.pool.position(pooled)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleJobEvents streams a job's live feed as Server-Sent Events.
// GET /v1/jobs/{id}/events. Frame catalog (event name → data):
//
//	stats       api.SearchStats — the latest Options.OnStats snapshot
//	level_start, goal_matched, degraded, escalated
//	            api.JobEvent — recorder events (level_start throttled to
//	            one per levelStartThrottle per subscriber)
//	shutdown    {"reason":"draining"} — the server began graceful drain;
//	            the stream stays open while the job finishes
//	result      the terminal response envelope, byte-identical to the
//	            synchronous endpoint's body for the same request
//	error       api.ErrorResponse — the job failed
//
// A stream always ends with exactly one result or error frame, preceded by a
// final stats frame; subscribing to a finished job replays the terminal
// frames immediately.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		s.writeError(w, http.StatusNotFound, api.CodeNotFound, "no such job")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeError(w, http.StatusInternalServerError, api.CodeInternal,
			"response writer cannot stream")
		return
	}
	sub := j.sink.Subscribe(0)
	defer sub.Close()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	var lastLevel time.Time
	var sentStats *api.SearchStats
	emitStats := func() {
		st := j.latestStats()
		if st == nil || st == sentStats {
			return
		}
		data, err := json.Marshal(st)
		if err != nil {
			return
		}
		writeSSE(w, "stats", data)
		sentStats = st
	}
	emitEvents := func() {
		evs, _ := sub.Events()
		for _, ev := range evs {
			if ev.Kind == telemetry.EvLevelStart {
				if time.Since(lastLevel) < levelStartThrottle {
					continue
				}
				lastLevel = time.Now()
			}
			data, err := json.Marshal(api.FromEvent(ev))
			if err != nil {
				continue
			}
			writeSSE(w, ev.Kind.String(), data)
		}
	}

	statsCh := j.statsChan()
	drain := s.drainCh
	for {
		emitEvents()
		emitStats()
		fl.Flush()
		select {
		case <-j.done:
			emitEvents()
			emitStats()
			result, errInfo := j.outcome()
			if errInfo != nil {
				var buf bytes.Buffer
				if api.Encode(&buf, api.ErrorV1{APIVersion: api.Version, Error: *errInfo}) == nil {
					writeSSE(w, "error", buf.Bytes())
				}
			} else {
				writeSSE(w, "result", result)
			}
			fl.Flush()
			return
		case <-sub.Wait():
		case <-statsCh:
			statsCh = j.statsChan()
		case <-drain:
			writeSSE(w, "shutdown", []byte(`{"reason":"draining"}`))
			fl.Flush()
			drain = nil
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE writes one Server-Sent-Events frame. Multi-line payloads (the
// indented result envelope) become one data: line each, which the SSE
// grammar reassembles with newlines — so the streamed result reconstructs to
// the synchronous body byte-for-byte.
func writeSSE(w http.ResponseWriter, event string, data []byte) {
	var b strings.Builder
	b.WriteString("event: ")
	b.WriteString(event)
	b.WriteByte('\n')
	for _, line := range bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n")) {
		b.WriteString("data: ")
		b.Write(line)
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	w.Write([]byte(b.String())) //nolint:errcheck // a dead client surfaces on the next write
}
