package server

// The slow-query journal: a bounded, concurrency-safe record of the top-K
// costliest requests the server has run, queryable on GET /v1/slowlog. Every
// costed request (analyze or query, synchronous or job) offers its
// aggregated cost vector after execution; the journal keeps the K with the
// highest wall cost, evicting the cheapest — and among equal costs the
// oldest — so a burst of expensive queries never wedges the journal on
// ancient entries. Entries carry the full request identity (kind, label,
// X-Request-ID, priority, queue wait, verdict glyphs), which is what makes
// the journal actionable: an operator goes from a slowlog row to the exact
// request's logs, span tree, and SSE stream by correlation id.

import (
	"container/heap"
	"context"
	"sync"
	"time"

	"privanalyzer/internal/obs"
	"privanalyzer/internal/telemetry"
)

// defaultSlowLogSize is the journal bound when Config.SlowLog is zero.
const defaultSlowLogSize = 32

// slowEntry is one journal row.
type slowEntry struct {
	seq         int64
	time        time.Time
	kind        string
	label       string
	requestID   string
	priority    int
	queueWaitNS int64
	verdicts    string
	cost        obs.QueryCost

	index int // heap slot
}

// slowHeap is a min-heap by (wall cost, then age): the root is the entry the
// next admission evicts — the cheapest, oldest-first among ties.
type slowHeap []*slowEntry

func (h slowHeap) Len() int { return len(h) }
func (h slowHeap) Less(i, j int) bool {
	if h[i].cost.WallNS != h[j].cost.WallNS {
		return h[i].cost.WallNS < h[j].cost.WallNS
	}
	return h[i].seq < h[j].seq
}
func (h slowHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *slowHeap) Push(x any) {
	e := x.(*slowEntry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *slowHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// slowLog is the journal. All methods are safe for concurrent use.
type slowLog struct {
	mu       sync.Mutex
	capacity int
	seq      int64
	admitted int64
	h        slowHeap
}

func newSlowLog(capacity int) *slowLog {
	if capacity <= 0 {
		capacity = defaultSlowLogSize
	}
	return &slowLog{capacity: capacity, h: make(slowHeap, 0, capacity)}
}

// record offers one finished request to the journal and reports whether it
// was admitted: always while the journal has room, and by evicting the
// cheapest retained entry once full — an offer at or below the current floor
// is dropped. The entry's seq is assigned here.
func (l *slowLog) record(e slowEntry) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e.seq = l.seq
	if len(l.h) >= l.capacity {
		// Full: the root is the cheapest (oldest among ties). A new entry
		// must beat it strictly on cost — equal-cost newcomers lose, which
		// keeps a steady stream of identical costs from churning the journal.
		if e.cost.WallNS <= l.h[0].cost.WallNS {
			return false
		}
		heap.Pop(&l.h)
	}
	heap.Push(&l.h, &e)
	l.admitted++
	return true
}

// snapshot returns up to n retained entries ordered by descending cost (ties
// newest first) plus the journal's lifetime admission count. n <= 0 means
// all retained entries.
func (l *slowLog) snapshot(n int) ([]slowEntry, int64) {
	l.mu.Lock()
	out := make([]slowEntry, len(l.h))
	for i, e := range l.h {
		out[i] = *e
	}
	admitted := l.admitted
	l.mu.Unlock()

	// Descending cost; among equals the more recent entry first.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0; j-- {
			a, b := &out[j-1], &out[j]
			if a.cost.WallNS > b.cost.WallNS ||
				(a.cost.WallNS == b.cost.WallNS && a.seq > b.seq) {
				break
			}
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out, admitted
}

// size returns the number of retained entries.
func (l *slowLog) size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.h)
}

// recordSlow offers one finished request to the journal: the prepared.run
// closures call it with the request's aggregated cost vector, so synchronous
// endpoints and async jobs feed the same journal. A nil cost (the request
// ran with no_cost, or the analysis produced no stats) records nothing.
// Admissions are summarized in the access/structured log with the request's
// correlation id, so a slowlog row and its log records join up.
func (s *Server) recordSlow(ctx context.Context, kind, label, verdicts string, cost *obs.QueryCost) {
	if cost == nil {
		return
	}
	// The ledger's wall measurement is the admission gate's cost model: feed
	// the per-kind estimate and mark the request observed so the server's
	// coarser outer wall measurement doesn't double-count it.
	s.adm.Observe(kind, time.Duration(cost.WallNS))
	if m := reqMetaFrom(ctx); m != nil {
		m.costObserved.Store(true)
	}
	e := slowEntry{
		time:      time.Now(),
		kind:      kind,
		label:     label,
		requestID: telemetry.RequestID(ctx),
		verdicts:  verdicts,
		cost:      *cost,
	}
	if m := reqMetaFrom(ctx); m != nil {
		e.priority = int(m.priority.Load())
		e.queueWaitNS = m.queueWaitNS.Load()
	}
	if !s.slow.record(e) {
		return
	}
	s.reg.Counter("server_slowlog_admitted_total").Add(1)
	s.reg.Gauge("server_slowlog_entries").Set(int64(s.slow.size()))
	telemetry.Logger(ctx).Info("slow query admitted",
		"component", "server",
		"kind", kind,
		"label", label,
		"verdicts", verdicts,
		"wall_ns", e.cost.WallNS,
		"cpu_ns", e.cost.CPUNS,
		"alloc_bytes", e.cost.AllocBytes,
		"states", e.cost.StatesExpanded,
		"queue_wait_ns", e.queueWaitNS,
		"priority", e.priority)
}
