package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestPoolPriorityOrder: with one stalled worker, queued jobs run highest
// priority first, FIFO within a priority.
func TestPoolPriorityOrder(t *testing.T) {
	p := newPool(1, 16)
	defer p.drain()

	// Occupy the only worker so subsequent submissions queue up.
	gate := make(chan struct{})
	running := make(chan struct{})
	go p.submit(context.Background(), 0, func() { close(running); <-gate })
	<-running

	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	names := []struct {
		name string
		prio int
	}{
		{"low-1", 0}, {"high-1", 5}, {"low-2", 0}, {"high-2", 5}, {"mid", 3},
	}
	// Enqueue one at a time (waiting for each to be pending) so the FIFO
	// sequence numbers are deterministic.
	for i, n := range names {
		nn := n
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.submit(context.Background(), nn.prio, func() {
				mu.Lock()
				order = append(order, nn.name)
				mu.Unlock()
			})
		}()
		for {
			if pending, _ := p.stats(); pending >= i+1 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}

	close(gate) // release the worker; it drains the heap in priority order
	wg.Wait()

	want := []string{"high-1", "high-2", "mid", "low-1", "low-2"}
	if len(order) != len(want) {
		t.Fatalf("ran %d jobs, want %d: %v", len(order), len(want), order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestPoolSaturation: the queue bound rejects, it does not block or grow.
func TestPoolSaturation(t *testing.T) {
	p := newPool(1, 2)
	defer p.drain()

	gate := make(chan struct{})
	running := make(chan struct{})
	go p.submit(context.Background(), 0, func() { close(running); <-gate })
	<-running

	// Fill the queue bound.
	for i := 0; i < 2; i++ {
		go p.submit(context.Background(), 0, func() {})
		for {
			if pending, _ := p.stats(); pending >= i+1 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	if !p.saturated() {
		t.Fatal("pool should be saturated")
	}
	if err := p.submit(context.Background(), 0, func() {}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("submit on full queue = %v, want ErrSaturated", err)
	}
	close(gate)
}

// TestPoolCancelWithdrawsPending: cancelling a waiter whose job has not
// started removes the job — it never runs.
func TestPoolCancelWithdrawsPending(t *testing.T) {
	p := newPool(1, 8)
	defer p.drain()

	gate := make(chan struct{})
	running := make(chan struct{})
	go p.submit(context.Background(), 0, func() { close(running); <-gate })
	<-running

	ctx, cancel := context.WithCancel(context.Background())
	ran := false
	errc := make(chan error, 1)
	go func() {
		errc <- p.submit(ctx, 0, func() { ran = true })
	}()
	for {
		if pending, _ := p.stats(); pending >= 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled submit = %v, want context.Canceled", err)
	}
	if pending, _ := p.stats(); pending != 0 {
		t.Errorf("withdrawn job still pending (%d)", pending)
	}
	close(gate)
	p.drain()
	if ran {
		t.Error("withdrawn job ran")
	}
}

// TestPoolDrainFinishesQueued: close stops admissions but queued work still
// completes before drain returns.
func TestPoolDrainFinishesQueued(t *testing.T) {
	p := newPool(1, 8)
	gate := make(chan struct{})
	running := make(chan struct{})
	go p.submit(context.Background(), 0, func() { close(running); <-gate })
	<-running

	var mu sync.Mutex
	ran := 0
	for i := 0; i < 3; i++ {
		go p.submit(context.Background(), 0, func() { mu.Lock(); ran++; mu.Unlock() })
		for {
			if pending, _ := p.stats(); pending >= i+1 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	p.close()
	if err := p.submit(context.Background(), 0, func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
	close(gate)
	p.drain()
	mu.Lock()
	defer mu.Unlock()
	if ran != 3 {
		t.Errorf("drain completed %d queued jobs, want 3", ran)
	}
}

// TestCheckerLRU: hits return the same instance, capacity evicts the
// coldest entry.
func TestCheckerLRU(t *testing.T) {
	l := newCheckerLRU(2)
	a1 := l.get("a")
	if l.get("a") != a1 {
		t.Error("second get returned a different checker")
	}
	l.get("b")
	l.get("a") // refresh a; b is now coldest
	l.get("c") // evicts b
	if l.len() != 2 {
		t.Fatalf("len = %d, want 2", l.len())
	}
	if l.get("a") != a1 {
		t.Error("hot entry was evicted")
	}
	if l.len() != 2 {
		t.Errorf("len after re-get = %d, want 2", l.len())
	}
}
