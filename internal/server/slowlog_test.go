package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"

	"privanalyzer/internal/api"
	"privanalyzer/internal/obs"
	"privanalyzer/internal/telemetry"
)

func slowCost(wallNS int64) obs.QueryCost {
	return obs.QueryCost{WallNS: wallNS, StatesExpanded: 1}
}

// TestSlowLogEviction pins the journal's retention policy: top-K by wall
// cost, cheapest-then-oldest evicted, equal-cost newcomers rejected, and
// snapshots ordered costliest-first with ties newest-first.
func TestSlowLogEviction(t *testing.T) {
	l := newSlowLog(3)
	for _, wall := range []int64{10, 30, 20} {
		if !l.record(slowEntry{cost: slowCost(wall)}) {
			t.Fatalf("cost %d rejected with room in the journal", wall)
		}
	}
	// Full. Below the floor (10): rejected.
	if l.record(slowEntry{cost: slowCost(5)}) {
		t.Error("cost 5 admitted over floor 10")
	}
	// Exactly the floor: rejected — equal-cost newcomers must not churn.
	if l.record(slowEntry{cost: slowCost(10)}) {
		t.Error("cost 10 admitted at floor 10")
	}
	// Above the floor: admitted, evicting the 10.
	if !l.record(slowEntry{cost: slowCost(25)}) {
		t.Error("cost 25 rejected above floor 10")
	}
	// A second 25 beats the new floor (20), evicting it; the snapshot must
	// order the newer 25 before the older one.
	if !l.record(slowEntry{cost: slowCost(25)}) {
		t.Error("cost 25 rejected above floor 20")
	}

	entries, admitted := l.snapshot(0)
	if admitted != 5 {
		t.Errorf("admitted = %d, want 5", admitted)
	}
	if len(entries) != 3 {
		t.Fatalf("retained %d entries, want 3", len(entries))
	}
	wantWall := []int64{30, 25, 25}
	for i, e := range entries {
		if e.cost.WallNS != wantWall[i] {
			t.Errorf("entry %d wall = %d, want %d", i, e.cost.WallNS, wantWall[i])
		}
	}
	if entries[1].seq < entries[2].seq {
		t.Errorf("equal-cost entries ordered oldest-first: seqs %d, %d",
			entries[1].seq, entries[2].seq)
	}

	// Truncation.
	if top, _ := l.snapshot(1); len(top) != 1 || top[0].cost.WallNS != 30 {
		t.Errorf("snapshot(1) = %+v, want the single costliest entry", top)
	}
}

// TestSlowLogConcurrent hammers the journal from parallel goroutines (run
// under -race via make test-race) and checks the invariant that matters:
// the retained set is exactly the top-K costs ever offered, regardless of
// arrival order.
func TestSlowLogConcurrent(t *testing.T) {
	const (
		capacity   = 16
		writers    = 8
		perWriter  = 200
		totalOffer = writers * perWriter
	)
	l := newSlowLog(capacity)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// All costs distinct: writer-stride encoding.
				l.record(slowEntry{cost: slowCost(int64(i*writers + g + 1))})
				if i%32 == 0 {
					l.snapshot(4) // readers race the writers
				}
			}
		}(g)
	}
	wg.Wait()

	entries, admitted := l.snapshot(0)
	if len(entries) != capacity {
		t.Fatalf("retained %d entries, want %d", len(entries), capacity)
	}
	if admitted < int64(capacity) || admitted > int64(totalOffer) {
		t.Errorf("admitted = %d, want within [%d, %d]", admitted, capacity, totalOffer)
	}
	// The top-K property is order-independent: the K highest of all offered
	// costs survive, whatever the interleaving.
	got := make([]int64, len(entries))
	for i, e := range entries {
		got[i] = e.cost.WallNS
	}
	sort.Slice(got, func(i, j int) bool { return got[i] > got[j] })
	for i := 0; i < capacity; i++ {
		want := int64(totalOffer - i)
		if got[i] != want {
			t.Fatalf("retained costs = %v, want the top %d of 1..%d", got, capacity, totalOffer)
		}
	}
}

// TestSlowLogEndpoint drives the journal end to end: a costed analyze
// request with a correlation id lands in GET /v1/slowlog with its full
// identity, and the n parameter validates.
func TestSlowLogEndpoint(t *testing.T) {
	reg := telemetry.New()
	s := New(Config{Concurrency: 2, Registry: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze",
		strings.NewReader(`{"program":"su"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "slowlog-test-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("analyze status = %d", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/v1/slowlog")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("slowlog status = %d: %s", resp.StatusCode, body)
	}
	var sl api.SlowLogResponse
	if err := json.Unmarshal([]byte(body), &sl); err != nil {
		t.Fatalf("slowlog response: %v\n%s", err, body)
	}
	if sl.APIVersion != api.Version {
		t.Errorf("api_version = %q", sl.APIVersion)
	}
	if sl.Capacity != defaultSlowLogSize {
		t.Errorf("capacity = %d, want %d", sl.Capacity, defaultSlowLogSize)
	}
	if sl.Admitted < 1 || len(sl.Entries) < 1 {
		t.Fatalf("admitted = %d, entries = %d, want >= 1 after a costed analyze",
			sl.Admitted, len(sl.Entries))
	}
	e := sl.Entries[0]
	if e.Kind != "analyze" || e.Label != "su" {
		t.Errorf("entry identity = (%s, %s), want (analyze, su)", e.Kind, e.Label)
	}
	if e.RequestID != "slowlog-test-1" {
		t.Errorf("request_id = %q, want the correlation id", e.RequestID)
	}
	if e.Cost.WallNS <= 0 || e.Cost.StatesExpanded <= 0 {
		t.Errorf("cost vector not populated: %+v", e.Cost)
	}
	if e.Verdicts == "" {
		t.Error("verdict glyphs missing")
	}
	if e.Time == "" {
		t.Error("timestamp missing")
	}

	// Parameter validation.
	for _, bad := range []string{"0", "-1", "x"} {
		resp, err := http.Get(ts.URL + "/v1/slowlog?n=" + bad)
		if err != nil {
			t.Fatal(err)
		}
		readAll(t, resp)
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("n=%s: status %d, want 400", bad, resp.StatusCode)
		}
	}

	// The admission counters reached the registry.
	if v := metricValue(t, ts.URL, "server_slowlog_admitted_total"); v < 1 {
		t.Errorf("server_slowlog_admitted_total = %d, want >= 1", v)
	}
}

// TestSlowLogSkipsUncostedRequests: a no_cost request produces no journal
// entry — the disabled path is genuinely free.
func TestSlowLogSkipsUncostedRequests(t *testing.T) {
	reg := telemetry.New()
	s := New(Config{Concurrency: 1, Registry: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	resp, body := postJSON(t, ts.URL+"/v1/analyze", `{"program":"su","search":{"no_cost":true}}`)
	if resp.StatusCode != 200 {
		t.Fatalf("analyze status = %d: %s", resp.StatusCode, body)
	}
	var sl api.SlowLogResponse
	resp2, body2 := getJSON(t, ts.URL+"/v1/slowlog")
	if resp2.StatusCode != 200 {
		t.Fatalf("slowlog status = %d", resp2.StatusCode)
	}
	if err := json.Unmarshal(body2, &sl); err != nil {
		t.Fatal(err)
	}
	if len(sl.Entries) != 0 || sl.Admitted != 0 {
		t.Errorf("no_cost analyze reached the journal: admitted=%d entries=%d",
			sl.Admitted, len(sl.Entries))
	}
}

// getJSON GETs url and returns the response and body.
func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	return resp, []byte(readAll(t, resp))
}

// TestMetricsJSONShape pins GET /v1/metrics.json: the typed snapshot shares
// the Prometheus endpoint's data (counters, gauges, histograms), carries the
// process gauges, and keeps each histogram summary internally consistent.
func TestMetricsJSONShape(t *testing.T) {
	reg := telemetry.New()
	s := New(Config{Concurrency: 1, Registry: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	// One real request so the request counters are non-zero.
	if resp, body := postJSON(t, ts.URL+"/v1/analyze", `{"program":"su"}`); resp.StatusCode != 200 {
		t.Fatalf("analyze status = %d: %s", resp.StatusCode, body)
	}

	resp, body := getJSON(t, ts.URL+"/v1/metrics.json")
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Errorf("content type = %q", ct)
	}
	var m api.MetricsResponse
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("metrics response: %v\n%s", err, body)
	}
	if m.APIVersion != api.Version {
		t.Errorf("api_version = %q", m.APIVersion)
	}
	if m.Counters["server_requests_total"] < 1 {
		t.Errorf("server_requests_total = %d, want >= 1", m.Counters["server_requests_total"])
	}
	// The process gauges registered by SampleProcess.
	if m.Gauges["process_goroutines"] < 1 {
		t.Errorf("process_goroutines = %d, want >= 1", m.Gauges["process_goroutines"])
	}
	if m.Gauges["process_heap_objects_bytes"] <= 0 {
		t.Errorf("process_heap_objects_bytes = %d, want > 0", m.Gauges["process_heap_objects_bytes"])
	}
	for _, name := range []string{"process_gc_pause_ns", "process_sched_latency_ns"} {
		if _, ok := m.Histograms[name]; !ok {
			t.Errorf("histogram %q missing from the snapshot", name)
		}
	}
	for name, h := range m.Histograms {
		if h.Count < 0 {
			t.Errorf("%s: count = %d", name, h.Count)
		}
		if h.Count > 0 {
			if h.Min > h.Max {
				t.Errorf("%s: min %d > max %d", name, h.Min, h.Max)
			}
			if h.P50 > h.P95 || h.P95 > h.P99 {
				t.Errorf("%s: quantiles out of order: p50=%d p95=%d p99=%d",
					name, h.P50, h.P95, h.P99)
			}
		}
	}

	// One snapshot path: a counter reported by the JSON endpoint matches the
	// Prometheus text endpoint's value for a counter no later request moves.
	jsonAdmitted := m.Counters["server_slowlog_admitted_total"]
	if prom := metricValue(t, ts.URL, "server_slowlog_admitted_total"); prom != jsonAdmitted {
		t.Errorf("slowlog admissions: json=%d prom=%d, want equal", jsonAdmitted, prom)
	}
}
