package server

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrSaturated reports an admission-control rejection: the pending queue is
// at its bound. Handlers map it to HTTP 503 and /readyz reports it.
var ErrSaturated = errors.New("server: queue saturated")

// ErrClosed reports a submission after drain began.
var ErrClosed = errors.New("server: draining, not accepting work")

// ErrShutdown reports a queued job aborted by the drain policy: the server
// shut down before a worker ever picked it up. Handlers and the jobs
// subsystem map it to a terminal "shutdown" outcome, never silence.
var ErrShutdown = errors.New("server: shut down before the queued request started")

// ErrWorkerPanic wraps a panic that escaped a job's own recovery — the
// worker's last-resort backstop keeps both the worker and the job's waiter
// alive.
var ErrWorkerPanic = errors.New("server: worker panic")

// job is one queued request. Higher priority runs sooner; equal priority is
// FIFO by sequence number. index is the heap slot (-1 once dequeued) so a
// cancelled waiter can withdraw a still-pending job in O(log n).
type job struct {
	priority   int
	seq        uint64
	run        func()
	done       chan struct{}
	index      int
	enqueuedAt time.Time

	// err is the job's terminal error when it never ran (aborted by the
	// drain policy, withdrawn by a deadline) or when a panic escaped run.
	// Written before done closes; read only after.
	err error
	// onAbort, when set, observes an abort (the job resolved without
	// running) before done closes — the async jobs' hook for recording a
	// terminal status a waiterless job would otherwise lose.
	onAbort func(error)
}

// abort resolves a job that will never run: the onAbort hook first (async
// jobs record their terminal status there), then the terminal error for any
// synchronous waiter, then done. The caller must have removed the job from
// the pending heap (withdraw/abortPending) — a job a worker owns must not be
// aborted.
func (j *job) abort(err error) {
	if j.onAbort != nil {
		j.onAbort(err)
	}
	j.err = err
	close(j.done)
}

// jobHeap orders pending jobs: max-priority first, FIFO within a priority.
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *jobHeap) Push(x any) {
	j := x.(*job)
	j.index = len(*h)
	*h = append(*h, j)
}
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.index = -1
	*h = old[:n-1]
	return j
}

// pool is the bounded, prioritized worker pool every request runs on. A
// fixed number of workers drain the heap; admission control is the queue
// bound, not the priority — a full queue rejects rather than grows.
type pool struct {
	mu       sync.Mutex
	cond     *sync.Cond
	pending  jobHeap
	seq      uint64
	workers  int
	depth    int
	inflight int
	closed   bool
	wg       sync.WaitGroup

	// onWait, when set before any submission, observes each job's queue
	// wait (enqueue→dequeue) — the server feeds it into the
	// server_queue_wait_ns histogram.
	onWait func(time.Duration)
}

func newPool(workers, depth int) *pool {
	p := &pool{workers: workers, depth: depth}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.pending) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.pending) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		j := heap.Pop(&p.pending).(*job)
		p.inflight++
		onWait := p.onWait
		p.mu.Unlock()

		if onWait != nil {
			onWait(time.Since(j.enqueuedAt))
		}
		p.runJob(j)

		p.mu.Lock()
		p.inflight--
		p.mu.Unlock()
	}
}

// runJob executes one job with the worker's last-resort panic backstop: a
// panic that escapes the job's own recovery becomes the job's terminal error
// instead of killing the worker — and done always closes, so no waiter hangs
// on a crashed request.
func (p *pool) runJob(j *job) {
	defer close(j.done)
	defer func() {
		if r := recover(); r != nil {
			j.err = fmt.Errorf("%w: %v", ErrWorkerPanic, r)
		}
	}()
	j.run()
}

// enqueue admits fn into the queue without waiting for it to run — the
// async half of submit, and what the jobs API is built on. The admission
// decision (ErrSaturated/ErrClosed) is synchronous; the returned job
// handle supports wait and position. onAbort (optional) is bound before the
// job becomes visible to workers or abortPending, so an abort can never race
// past it.
func (p *pool) enqueue(priority int, fn func(), onAbort func(error)) (*job, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	if len(p.pending) >= p.depth {
		p.mu.Unlock()
		return nil, ErrSaturated
	}
	j := &job{priority: priority, seq: p.seq, run: fn, done: make(chan struct{}), enqueuedAt: time.Now(), onAbort: onAbort}
	p.seq++
	heap.Push(&p.pending, j)
	p.mu.Unlock()
	p.cond.Signal()
	return j, nil
}

// wait blocks until j has run, or ctx is cancelled while it is still
// pending. Cancellation after a worker picked the job waits for fn to
// return (fn observes the same ctx and winds down promptly). The returned
// error is ctx's on withdrawal, or the job's own terminal error (abort,
// escaped panic) when it resolved without running normally.
func (p *pool) wait(ctx context.Context, j *job) error {
	select {
	case <-j.done:
		return j.err
	case <-ctx.Done():
		p.mu.Lock()
		if j.index >= 0 { // still pending: withdraw, never runs
			heap.Remove(&p.pending, j.index)
			p.mu.Unlock()
			return ctx.Err()
		}
		p.mu.Unlock()
		<-j.done // already running (or aborted): the owner resolves it
		return j.err
	}
}

// withdraw removes a still-pending job from the heap so it never runs,
// reporting whether it was still pending. False means a worker already owns
// it (or it was withdrawn/aborted before) and the caller must not abort it.
func (p *pool) withdraw(j *job) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if j.index < 0 {
		return false
	}
	heap.Remove(&p.pending, j.index)
	return true
}

// submit enqueues fn and blocks until it has run, the queue rejects it, or
// ctx is cancelled while it is still pending — enqueue and wait in one call,
// the synchronous endpoints' path.
func (p *pool) submit(ctx context.Context, priority int, fn func()) error {
	j, err := p.enqueue(priority, fn, nil)
	if err != nil {
		return err
	}
	return p.wait(ctx, j)
}

// position reports j's 1-based place among pending jobs (1 = next to run),
// or 0 once a worker has picked it up (or it was withdrawn).
func (p *pool) position(j *job) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if j.index < 0 {
		return 0
	}
	pos := 1
	for _, o := range p.pending {
		if o != j && (o.priority > j.priority || (o.priority == j.priority && o.seq < j.seq)) {
			pos++
		}
	}
	return pos
}

// saturated reports whether the next submit would be rejected.
func (p *pool) saturated() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed || len(p.pending) >= p.depth
}

// stats returns the pending and inflight counts (queue-depth gauges).
func (p *pool) stats() (pending, inflight int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pending), p.inflight
}

// close stops admissions; queued and inflight jobs still complete.
func (p *pool) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// abortPending closes the pool and withdraws every queued-but-unstarted job,
// resolving each with err — the drain policy: work that never started gets a
// terminal answer (a 503 "shutdown" envelope, a terminal job status), not a
// race against the drain window. In-flight jobs are untouched. Returns how
// many jobs were aborted.
func (p *pool) abortPending(err error) int {
	p.mu.Lock()
	p.closed = true
	aborted := p.pending
	p.pending = nil
	for _, j := range aborted {
		j.index = -1
	}
	p.mu.Unlock()
	p.cond.Broadcast()
	for _, j := range aborted {
		j.abort(err)
	}
	return len(aborted)
}

// drain closes the pool and waits for every worker to exit.
func (p *pool) drain() {
	p.close()
	p.wg.Wait()
}

// drainWithin closes the pool and waits up to d for every worker to exit.
// False means a worker was still running at the deadline — a stalled worker
// must never hold shutdown hostage, so the caller proceeds and the worker
// goroutine is deliberately abandoned to process exit.
func (p *pool) drainWithin(d time.Duration) bool {
	p.close()
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	if d <= 0 {
		d = time.Millisecond
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-done:
		return true
	case <-t.C:
		return false
	}
}
