package server

import (
	"container/heap"
	"context"
	"errors"
	"sync"
)

// ErrSaturated reports an admission-control rejection: the pending queue is
// at its bound. Handlers map it to HTTP 503 and /readyz reports it.
var ErrSaturated = errors.New("server: queue saturated")

// ErrClosed reports a submission after drain began.
var ErrClosed = errors.New("server: draining, not accepting work")

// job is one queued request. Higher priority runs sooner; equal priority is
// FIFO by sequence number. index is the heap slot (-1 once dequeued) so a
// cancelled waiter can withdraw a still-pending job in O(log n).
type job struct {
	priority int
	seq      uint64
	run      func()
	done     chan struct{}
	index    int
}

// jobHeap orders pending jobs: max-priority first, FIFO within a priority.
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}
func (h jobHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *jobHeap) Push(x any) {
	j := x.(*job)
	j.index = len(*h)
	*h = append(*h, j)
}
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.index = -1
	*h = old[:n-1]
	return j
}

// pool is the bounded, prioritized worker pool every request runs on. A
// fixed number of workers drain the heap; admission control is the queue
// bound, not the priority — a full queue rejects rather than grows.
type pool struct {
	mu       sync.Mutex
	cond     *sync.Cond
	pending  jobHeap
	seq      uint64
	workers  int
	depth    int
	inflight int
	closed   bool
	wg       sync.WaitGroup
}

func newPool(workers, depth int) *pool {
	p := &pool{workers: workers, depth: depth}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.pending) == 0 && !p.closed {
			p.cond.Wait()
		}
		if len(p.pending) == 0 && p.closed {
			p.mu.Unlock()
			return
		}
		j := heap.Pop(&p.pending).(*job)
		p.inflight++
		p.mu.Unlock()

		j.run()
		close(j.done)

		p.mu.Lock()
		p.inflight--
		p.mu.Unlock()
	}
}

// submit enqueues fn and blocks until it has run, the queue rejects it, or
// ctx is cancelled while it is still pending. Cancellation after a worker
// picked the job waits for fn to return (fn observes the same ctx and winds
// down promptly).
func (p *pool) submit(ctx context.Context, priority int, fn func()) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	if len(p.pending) >= p.depth {
		p.mu.Unlock()
		return ErrSaturated
	}
	j := &job{priority: priority, seq: p.seq, run: fn, done: make(chan struct{})}
	p.seq++
	heap.Push(&p.pending, j)
	p.mu.Unlock()
	p.cond.Signal()

	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		p.mu.Lock()
		if j.index >= 0 { // still pending: withdraw, never runs
			heap.Remove(&p.pending, j.index)
			p.mu.Unlock()
			return ctx.Err()
		}
		p.mu.Unlock()
		<-j.done // already running: the worker owns it to completion
		return nil
	}
}

// saturated reports whether the next submit would be rejected.
func (p *pool) saturated() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed || len(p.pending) >= p.depth
}

// stats returns the pending and inflight counts (queue-depth gauges).
func (p *pool) stats() (pending, inflight int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pending), p.inflight
}

// close stops admissions; queued and inflight jobs still complete.
func (p *pool) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// drain closes the pool and waits for every worker to exit.
func (p *pool) drain() {
	p.close()
	p.wg.Wait()
}
