package server

// Admission control: the layered gate in front of the priority queue. The
// queue-depth bound (pool.depth) caps how many requests can wait; this file
// caps how much *work* they are allowed to represent. Every admitted request
// carries an estimated cost — a per-kind exponentially-weighted moving
// average over the observed wall cost of finished requests, seeded by the
// obs.QueryCost ledger (the same measurement the slow-query journal ranks
// by) — and the gate rejects when the estimated backlog would exceed the
// configured budget. A rejection is a structured 429 envelope
// ("admission_rejected") carrying retry_after_ms derived from the current
// queue-wait p95, so a well-behaved client backs off by exactly the amount
// the queue is currently late.
//
// The brownout controller (brownout.go) feeds the same gate: at elevated
// levels whole priority classes are shed here before the cost budget is even
// consulted. Shedding is accounted per reason on the server_shed_*_total
// counters.

import (
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Fallback cost estimates used until a kind has observed history. An analyze
// fans out a whole verdict grid; a standalone query is one search.
const (
	defaultAnalyzeCostNS = int64(50 * time.Millisecond)
	defaultQueryCostNS   = int64(10 * time.Millisecond)
)

// ewmaAlpha is the smoothing factor for the per-kind cost estimate: heavy
// enough that a shift in traffic mix re-centers within a few requests, light
// enough that one outlier does not swing the gate.
const ewmaAlpha = 0.2

// Retry-after bounds: the hint is the queue-wait p95, but never below the
// floor (a cold histogram would tell clients to hammer) and never above the
// cap (an outlier-poisoned p95 must not park clients for minutes).
const (
	minRetryAfter = 250 * time.Millisecond
	maxRetryAfter = 30 * time.Second
)

// RejectError is a load-shedding rejection: the admission gate (cost budget
// or brownout class shed) refused the request before it reached the queue.
// Handlers render it as the uniform error envelope with the embedded status,
// code, and retry hint.
type RejectError struct {
	// Status is the HTTP status (429 for admission rejections).
	Status int
	// Code is the stable wire code (api.CodeAdmissionRejected).
	Code string
	// Message is the human-readable reason.
	Message string
	// RetryAfter is the backoff hint (queue-wait p95 derived).
	RetryAfter time.Duration
}

func (e *RejectError) Error() string {
	return fmt.Sprintf("server: %s: %s (retry after %s)", e.Code, e.Message, e.RetryAfter)
}

// Admission is the estimated-cost gate. A zero budget disables the cost
// check (class shedding and the queue bound still apply). All methods are
// safe for concurrent use.
type Admission struct {
	budget int64 // max estimated backlog in ns of work; 0 = off

	mu      sync.Mutex
	backlog int64 // estimated cost of admitted-but-unfinished work
	est     map[string]float64
}

// NewAdmission builds a gate with the given backlog budget: the total
// estimated wall time of admitted-but-unfinished work the server will hold
// before rejecting. 0 disables the cost gate.
func NewAdmission(budget time.Duration) *Admission {
	return &Admission{budget: budget.Nanoseconds(), est: make(map[string]float64)}
}

// estimateLocked returns the expected wall cost of one request of this kind.
func (a *Admission) estimateLocked(kind string) int64 {
	if v, ok := a.est[kind]; ok && v > 0 {
		return int64(v)
	}
	if kind == "analyze" {
		return defaultAnalyzeCostNS
	}
	return defaultQueryCostNS
}

// Admit charges one request of this kind against the backlog budget. It
// returns a ticket to release when the request reaches any terminal state —
// finished, withdrawn, aborted — and ok=false (with a nil ticket and no
// charge) when the charge would push the backlog past the budget.
func (a *Admission) Admit(kind string) (t *ticket, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	cost := a.estimateLocked(kind)
	if a.budget > 0 && a.backlog+cost > a.budget && a.backlog > 0 {
		// backlog > 0: a single request dearer than the whole budget is still
		// admitted into an empty server — the budget sheds bursts, it does
		// not deadlock expensive kinds out entirely.
		return nil, false
	}
	a.backlog += cost
	return &ticket{a: a, cost: cost}, true
}

// Observe feeds one finished request's measured wall cost into the kind's
// estimate. Called with the cost ledger's WallNS when the request carried
// one, or the server's own wall measurement otherwise.
func (a *Admission) Observe(kind string, wall time.Duration) {
	if wall <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if prev, ok := a.est[kind]; ok {
		a.est[kind] = (1-ewmaAlpha)*prev + ewmaAlpha*float64(wall.Nanoseconds())
	} else {
		a.est[kind] = float64(wall.Nanoseconds())
	}
}

// Backlog reports the current estimated backlog (admitted, unfinished).
func (a *Admission) Backlog() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return time.Duration(a.backlog)
}

// Estimate reports the current per-kind cost estimate.
func (a *Admission) Estimate(kind string) time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return time.Duration(a.estimateLocked(kind))
}

// ticket is one admitted request's charge against the backlog. Release is
// idempotent — the terminal paths (ran, withdrawn, aborted, rejected by the
// queue bound) all call it without coordinating.
type ticket struct {
	a    *Admission
	cost int64
	once sync.Once
}

// release returns the ticket's charge to the budget. Nil-safe.
func (t *ticket) release() {
	if t == nil {
		return
	}
	t.once.Do(func() {
		t.a.mu.Lock()
		t.a.backlog -= t.cost
		t.a.mu.Unlock()
	})
}

// retryAfter derives the client backoff hint from the current queue-wait p95
// — "come back when the queue you would have joined has likely moved" —
// clamped to [minRetryAfter, maxRetryAfter].
func (s *Server) retryAfter() time.Duration {
	d := time.Duration(s.reg.Histogram("server_queue_wait_ns").Quantile(0.95))
	if d < minRetryAfter {
		return minRetryAfter
	}
	if d > maxRetryAfter {
		return maxRetryAfter
	}
	return d
}

// admit runs the layered admission decision for one prepared request:
// chaos-injected queue-full storms, brownout class shedding, then the
// estimated-cost budget. The queue-depth bound itself is enforced by the
// subsequent enqueue. On success the returned ticket must be released at the
// request's terminal state; on rejection the shed is already counted.
func (s *Server) admit(kind string, priority int) (*ticket, *RejectError) {
	if s.cfg.ServerFaults.StealAdmission() {
		s.countShed("queue_full")
		return nil, &RejectError{
			Status:     http.StatusServiceUnavailable,
			Code:       "queue_full",
			Message:    "pending queue is full (injected storm)",
			RetryAfter: s.retryAfter(),
		}
	}
	if lvl := s.brown.Level(); (lvl >= BrownoutShedBackground && priority < 0) ||
		(lvl >= BrownoutEmergency && priority <= 0) {
		s.countShed("brownout")
		return nil, &RejectError{
			Status: http.StatusTooManyRequests,
			Code:   "admission_rejected",
			Message: fmt.Sprintf("brownout level %d (%s) is shedding priority %d requests",
				lvl, brownoutLevelName(lvl), priority),
			RetryAfter: s.retryAfter(),
		}
	}
	tkt, ok := s.adm.Admit(kind)
	if !ok {
		s.countShed("cost")
		return nil, &RejectError{
			Status: http.StatusTooManyRequests,
			Code:   "admission_rejected",
			Message: fmt.Sprintf("estimated backlog %s exceeds the queue cost budget %s",
				s.adm.Backlog().Round(time.Millisecond), s.cfg.MaxQueueCost),
			RetryAfter: s.retryAfter(),
		}
	}
	return tkt, nil
}

// countShed bumps the per-reason shed counter (server_shed_<reason>_total)
// and the legacy rejected total.
func (s *Server) countShed(reason string) {
	s.reg.Counter("server_shed_" + reason + "_total").Add(1)
	s.reg.Counter("server_rejected_total").Add(1)
}
