package server

// The error-envelope golden test: every rejection class renders through one
// versioned shape with a stable code. These bytes are the wire contract —
// a diff here is an API change, not a refactor.

import (
	"net/http/httptest"
	"testing"

	"privanalyzer/internal/api"
)

func TestErrorEnvelopeGolden(t *testing.T) {
	s := New(Config{Concurrency: 1})
	defer s.Close()

	cases := []struct {
		name       string
		status     int
		det        api.ErrorDetail
		wantBody   string
		wantHeader string // Retry-After; "" = absent
	}{
		{
			name:   "bad_request",
			status: 400,
			det:    api.ErrorDetail{Code: api.CodeBadRequest, Message: "program is required"},
			wantBody: `{
  "api_version": "v1",
  "error": {
    "code": "bad_request",
    "message": "program is required"
  }
}
`,
		},
		{
			name:   "not_found",
			status: 404,
			det:    api.ErrorDetail{Code: api.CodeNotFound, Message: "unknown program"},
			wantBody: `{
  "api_version": "v1",
  "error": {
    "code": "not_found",
    "message": "unknown program"
  }
}
`,
		},
		{
			name:   "queue_full",
			status: 503,
			det:    api.ErrorDetail{Code: api.CodeQueueFull, Message: "server: queue saturated", RetryAfterMS: 250},
			wantBody: `{
  "api_version": "v1",
  "error": {
    "code": "queue_full",
    "message": "server: queue saturated",
    "retry_after_ms": 250
  }
}
`,
			wantHeader: "1",
		},
		{
			name:   "admission_rejected",
			status: 429,
			det:    api.ErrorDetail{Code: api.CodeAdmissionRejected, Message: "estimated backlog exceeds budget", RetryAfterMS: 1250},
			wantBody: `{
  "api_version": "v1",
  "error": {
    "code": "admission_rejected",
    "message": "estimated backlog exceeds budget",
    "retry_after_ms": 1250
  }
}
`,
			wantHeader: "2",
		},
		{
			name:   "deadline_exceeded",
			status: 504,
			det:    api.ErrorDetail{Code: api.CodeDeadlineExceeded, Message: "deadline expired before the request ran"},
			wantBody: `{
  "api_version": "v1",
  "error": {
    "code": "deadline_exceeded",
    "message": "deadline expired before the request ran"
  }
}
`,
		},
		{
			name:   "shutdown",
			status: 503,
			det:    api.ErrorDetail{Code: api.CodeShutdown, Message: "server: shut down before the queued request started"},
			wantBody: `{
  "api_version": "v1",
  "error": {
    "code": "shutdown",
    "message": "server: shut down before the queued request started"
  }
}
`,
		},
		{
			name:   "canceled",
			status: 503,
			det:    api.ErrorDetail{Code: api.CodeCanceled, Message: "request cancelled before execution"},
			wantBody: `{
  "api_version": "v1",
  "error": {
    "code": "canceled",
    "message": "request cancelled before execution"
  }
}
`,
		},
		{
			name:   "internal",
			status: 500,
			det:    api.ErrorDetail{Code: api.CodeInternal, Message: "internal error: handler panic"},
			wantBody: `{
  "api_version": "v1",
  "error": {
    "code": "internal",
    "message": "internal error: handler panic"
  }
}
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := httptest.NewRecorder()
			s.writeErrorDetail(rr, tc.status, tc.det)
			if rr.Code != tc.status {
				t.Errorf("status = %d, want %d", rr.Code, tc.status)
			}
			if got := rr.Body.String(); got != tc.wantBody {
				t.Errorf("envelope bytes drifted:\ngot:  %q\nwant: %q", got, tc.wantBody)
			}
			if got := rr.Header().Get("Retry-After"); got != tc.wantHeader {
				t.Errorf("Retry-After = %q, want %q", got, tc.wantHeader)
			}
		})
	}
}

// TestErrorCodesPinned pins the code constants' wire values — codes are
// added, never renamed.
func TestErrorCodesPinned(t *testing.T) {
	pinned := []struct{ got, want string }{
		{api.CodeBadRequest, "bad_request"},
		{api.CodeNotFound, "not_found"},
		{api.CodeQueueFull, "queue_full"},
		{api.CodeAdmissionRejected, "admission_rejected"},
		{api.CodeDeadlineExceeded, "deadline_exceeded"},
		{api.CodeShutdown, "shutdown"},
		{api.CodeCanceled, "canceled"},
		{api.CodeInternal, "internal"},
		{api.CodeSaturated, "queue_full"}, // deprecated alias follows
	}
	for _, p := range pinned {
		if p.got != p.want {
			t.Errorf("code constant = %q, want %q", p.got, p.want)
		}
	}
}
