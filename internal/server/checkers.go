package server

import (
	"container/list"
	"sync"

	"privanalyzer/internal/rosa"
)

// checkerLRU keeps per-program rosa.Checker instances hot. Each checker
// carries the transition caches for its program's query mix, so repeat
// requests for the same program amortize graph expansion across requests —
// the serving-path counterpart of core.AnalyzeContext sharing one checker
// across a single analysis's query grid. Eviction drops the coldest
// program's caches; correctness never depends on a hit (a fresh checker
// recomputes identical verdicts, pinned by the determinism tests).
type checkerLRU struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recently used
	m   map[string]*list.Element
}

type lruEntry struct {
	key string
	c   *rosa.Checker
}

func newCheckerLRU(max int) *checkerLRU {
	return &checkerLRU{max: max, ll: list.New(), m: make(map[string]*list.Element)}
}

// get returns the checker for key, building (and caching) one on a miss and
// evicting the least-recently-used entry past capacity.
func (l *checkerLRU) get(key string) *rosa.Checker {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.m[key]; ok {
		l.ll.MoveToFront(el)
		return el.Value.(*lruEntry).c
	}
	c := rosa.NewChecker()
	l.m[key] = l.ll.PushFront(&lruEntry{key: key, c: c})
	for l.ll.Len() > l.max {
		last := l.ll.Back()
		l.ll.Remove(last)
		delete(l.m, last.Value.(*lruEntry).key)
	}
	return c
}

// len reports the resident checker count (an occupancy gauge).
func (l *checkerLRU) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ll.Len()
}
