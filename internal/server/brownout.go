package server

// Brownout degradation: when the server is overloaded it degrades service in
// declared steps instead of collapsing. A controller goroutine samples three
// load signals — pending-queue depth, queue-wait p95, and the process's live
// heap (the telemetry process gauge) — on a fixed interval and steps the
// brownout level up one per breached sample, down one after Hold consecutive
// healthy samples (hysteresis, so the level does not flap at the threshold).
//
// The levels, in order of increasing desperation:
//
//	0 normal     — no degradation
//	1 shed-bg    — admission rejects the background class (priority < 0)
//	2 degrade    — additionally, Escalate ladders are forced to start at a
//	               low rung, so each admitted search proves it needs budget
//	               before it gets budget (the serving analogue of PR 5's
//	               mem-pressure degradation)
//	3 emergency  — admission rejects everything but high priority (> 0), and
//	               /readyz reports not-ready so load balancers stop routing
//
// Every transition is logged and counted (server_brownout_transitions_total);
// the current level is the server_brownout_level gauge, visible in /readyz
// detail, /metrics, and /v1/metrics.json.

import (
	"fmt"
	"log/slog"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Brownout levels. See the package comment above for what each sheds.
const (
	BrownoutNormal         = 0
	BrownoutShedBackground = 1
	BrownoutDegradeSearch  = 2
	BrownoutEmergency      = 3
)

// brownoutEscalateStart is the forced Escalate ladder start at
// BrownoutDegradeSearch and above: low enough that cheap queries finish on
// the first rung, high enough that the ladder is not pure overhead. Requests
// that disable escalation (no_escalate) run at their full budget regardless —
// the ladder start is meaningless without a ladder.
const brownoutEscalateStart = 1 << 9

// brownoutLevelName names a level for logs and envelopes.
func brownoutLevelName(lvl int) string {
	switch {
	case lvl <= BrownoutNormal:
		return "normal"
	case lvl == BrownoutShedBackground:
		return "shed-background"
	case lvl == BrownoutDegradeSearch:
		return "degrade-search"
	default:
		return "emergency"
	}
}

// BrownoutConfig declares the overload thresholds. The controller runs only
// when at least one threshold is set; a breach of ANY set threshold counts
// the sample as overloaded.
type BrownoutConfig struct {
	// QueueHigh is the pending-queue depth at or above which a sample is
	// overloaded. 0 = signal unused.
	QueueHigh int
	// WaitP95 is the queue-wait p95 at or above which a sample is
	// overloaded. 0 = signal unused.
	WaitP95 time.Duration
	// HeapBytes is the live-heap size (process_heap_objects_bytes) at or
	// above which a sample is overloaded. 0 = signal unused.
	HeapBytes int64
	// Interval is the sampling cadence. 0 = 250ms.
	Interval time.Duration
	// Hold is how many consecutive healthy samples step the level back down
	// by one — the hysteresis. 0 = 4.
	Hold int
}

// enabled reports whether any overload signal is configured.
func (c BrownoutConfig) enabled() bool {
	return c.QueueHigh > 0 || c.WaitP95 > 0 || c.HeapBytes > 0
}

// String renders the config in the -brownout flag grammar.
func (c BrownoutConfig) String() string {
	if !c.enabled() {
		return "off"
	}
	var parts []string
	if c.QueueHigh > 0 {
		parts = append(parts, "q="+strconv.Itoa(c.QueueHigh))
	}
	if c.WaitP95 > 0 {
		parts = append(parts, "wait="+c.WaitP95.String())
	}
	if c.HeapBytes > 0 {
		parts = append(parts, "heap="+strconv.FormatInt(c.HeapBytes, 10))
	}
	return strings.Join(parts, ",")
}

// ParseBrownout parses the -brownout flag grammar: "off" (or empty) disables,
// otherwise a comma list of key=value settings:
//
//	q=N          queue-depth threshold
//	wait=DUR     queue-wait p95 threshold (Go duration, e.g. 500ms)
//	heap=BYTES   live-heap threshold; K/M/G suffixes are binary multiples
//	interval=DUR sampling cadence (default 250ms)
//	hold=N       healthy samples before stepping down (default 4)
//
// At least one of q/wait/heap must be set for the controller to run.
func ParseBrownout(s string) (BrownoutConfig, error) {
	var cfg BrownoutConfig
	s = strings.TrimSpace(s)
	if s == "" || s == "off" {
		return cfg, nil
	}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || val == "" {
			return cfg, fmt.Errorf("brownout: %q is not key=value", part)
		}
		switch key {
		case "q":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return cfg, fmt.Errorf("brownout: q must be a positive integer, got %q", val)
			}
			cfg.QueueHigh = n
		case "wait":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return cfg, fmt.Errorf("brownout: wait must be a positive duration, got %q", val)
			}
			cfg.WaitP95 = d
		case "heap":
			n, err := parseBytes(val)
			if err != nil {
				return cfg, fmt.Errorf("brownout: %v", err)
			}
			cfg.HeapBytes = n
		case "interval":
			d, err := time.ParseDuration(val)
			if err != nil || d <= 0 {
				return cfg, fmt.Errorf("brownout: interval must be a positive duration, got %q", val)
			}
			cfg.Interval = d
		case "hold":
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return cfg, fmt.Errorf("brownout: hold must be a positive integer, got %q", val)
			}
			cfg.Hold = n
		default:
			return cfg, fmt.Errorf("brownout: unknown key %q (want q, wait, heap, interval, hold)", key)
		}
	}
	if !cfg.enabled() {
		return cfg, fmt.Errorf("brownout: at least one of q=, wait=, heap= is required")
	}
	return cfg, nil
}

// parseBytes parses a byte count with an optional K/M/G binary suffix.
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 1 {
		return 0, fmt.Errorf("heap must be a positive byte count (K/M/G suffixes allowed), got %q", s)
	}
	return n * mult, nil
}

// brownout is the load controller. Always present on a Server; the sampling
// goroutine runs only when the config declares thresholds, so Level() is a
// constant 0 on an unconfigured server.
type brownout struct {
	cfg BrownoutConfig
	srv *Server
	log *slog.Logger

	mu      sync.Mutex
	level   int
	healthy int // consecutive healthy samples at the current level

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

func newBrownout(srv *Server, cfg BrownoutConfig) *brownout {
	if cfg.Interval <= 0 {
		cfg.Interval = 250 * time.Millisecond
	}
	if cfg.Hold <= 0 {
		cfg.Hold = 4
	}
	b := &brownout{
		cfg:  cfg,
		srv:  srv,
		log:  srv.log,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	if cfg.enabled() {
		go b.loop()
	} else {
		close(b.done)
	}
	return b
}

// Level reports the current brownout level.
func (b *brownout) Level() int {
	if b == nil {
		return BrownoutNormal
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.level
}

// close stops the sampling goroutine. Idempotent.
func (b *brownout) close() {
	if b == nil {
		return
	}
	b.stopOnce.Do(func() { close(b.stop) })
	<-b.done
}

func (b *brownout) loop() {
	defer close(b.done)
	t := time.NewTicker(b.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-b.stop:
			return
		case <-t.C:
			b.step(b.overloaded())
		}
	}
}

// overloaded samples the three load signals and reports whether any set
// threshold is breached.
func (b *brownout) overloaded() bool {
	pending, _ := b.srv.pool.stats()
	if b.cfg.QueueHigh > 0 && pending >= b.cfg.QueueHigh {
		return true
	}
	if b.cfg.WaitP95 > 0 {
		p95 := time.Duration(b.srv.reg.Histogram("server_queue_wait_ns").Quantile(0.95))
		if p95 >= b.cfg.WaitP95 {
			return true
		}
	}
	if b.cfg.HeapBytes > 0 {
		b.srv.reg.SampleProcess()
		if b.srv.reg.Gauge("process_heap_objects_bytes").Value() >= b.cfg.HeapBytes {
			return true
		}
	}
	return false
}

// step applies one sample to the hysteresis state machine: up one level per
// overloaded sample, down one after Hold consecutive healthy samples.
func (b *brownout) step(overloaded bool) {
	b.mu.Lock()
	from := b.level
	switch {
	case overloaded:
		b.healthy = 0
		if b.level < BrownoutEmergency {
			b.level++
		}
	case b.level > BrownoutNormal:
		b.healthy++
		if b.healthy >= b.cfg.Hold {
			b.level--
			b.healthy = 0
		}
	}
	to := b.level
	b.mu.Unlock()
	if to == from {
		return
	}
	b.srv.reg.Gauge("server_brownout_level").Set(int64(to))
	b.srv.reg.Counter("server_brownout_transitions_total").Add(1)
	b.log.Warn("brownout transition",
		"component", "server",
		"from", from, "to", to,
		"from_name", brownoutLevelName(from), "to_name", brownoutLevelName(to))
}

// degradeSearch reports whether admitted searches should run with the forced
// low escalation-ladder start.
func (s *Server) degradeSearch() bool {
	return s.brown.Level() >= BrownoutDegradeSearch
}

// clampEscalateStart applies the brownout ladder clamp to a configured start
// (0 = engine default, which is far above the clamp).
func clampEscalateStart(start int) int {
	if start == 0 || start > brownoutEscalateStart {
		return brownoutEscalateStart
	}
	return start
}
