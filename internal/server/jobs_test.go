package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"privanalyzer/internal/api"
	"privanalyzer/internal/telemetry"
)

// queryBody is a small deterministic query used throughout: attack 2 with
// CapSetuid resolves vulnerable with a witness in well under a second. No
// per-query stats block: cache hit/miss counts vary with cache warmth (the
// determinism contract covers verdicts, witnesses, and state counts), and
// the SSE stats frames flow regardless — the job observer always attaches.
const queryBody = `{"attack":2,"privs":"CapSetuid","syscalls":["open","chown","setuid","seteuid","setresuid","setgid","setegid","setresgid","unlink","rename"]}`

// sseFrame is one parsed Server-Sent-Events frame.
type sseFrame struct {
	event string
	data  []string
}

// payload reassembles the frame's data lines per the SSE grammar.
func (f sseFrame) payload() string { return strings.Join(f.data, "\n") }

// readSSE parses an event stream until EOF.
func readSSE(t *testing.T, r io.Reader) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" {
				frames = append(frames, cur)
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = append(cur.data, strings.TrimPrefix(line, "data: "))
		default:
			t.Errorf("malformed SSE line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	return frames
}

// submitJob posts a job and decodes the 202 acknowledgment.
func submitJob(t *testing.T, baseURL, body string) api.JobResponse {
	t.Helper()
	resp, raw := postJSON(t, baseURL+"/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs = %d, want 202: %s", resp.StatusCode, raw)
	}
	var jr api.JobResponse
	if err := json.Unmarshal(raw, &jr); err != nil {
		t.Fatalf("acknowledgment is not a JobResponse: %v\n%s", err, raw)
	}
	return jr
}

// jobStatus fetches and decodes GET /v1/jobs/{id}.
func jobStatus(t *testing.T, url string) api.JobStatusResponse {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status endpoint = %d: %s", resp.StatusCode, body)
	}
	var st api.JobStatusResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("not a JobStatusResponse: %v\n%s", err, body)
	}
	return st
}

// normalizeQuery zeroes a query envelope's wall-clock fields and re-encodes;
// the streamed and synchronous forms must agree on everything else.
func normalizeQuery(t *testing.T, raw []byte) []byte {
	t.Helper()
	var qr api.QueryResponse
	if err := json.Unmarshal(raw, &qr); err != nil {
		t.Fatalf("not a QueryResponse: %v\n%s", err, raw)
	}
	qr.Result.ElapsedNS = 0
	if qr.Result.Stats != nil {
		qr.Result.Stats.StatesPerSec = 0
		qr.Result.Stats.ElapsedNS = 0
		if c := qr.Result.Stats.Cost; c != nil {
			c.WallNS, c.CPUNS, c.AllocBytes = 0, 0, 0
		}
	}
	var buf bytes.Buffer
	if err := api.Encode(&buf, &qr); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestJobStreamDeterminism pins the tentpole acceptance criterion: the
// terminal SSE result frame of a streamed job reconstructs byte-identically
// (modulo wall-clock fields) to the synchronous POST /v1/query response for
// the same request — across concurrent streamed jobs.
func TestJobStreamDeterminism(t *testing.T) {
	_, ts := testServer(t, Config{Concurrency: 4})

	resp, syncBody := postJSON(t, ts.URL+"/v1/query", queryBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sync query = %d: %s", resp.StatusCode, syncBody)
	}
	ref := normalizeQuery(t, syncBody)

	const n = 4
	streamed := make([][]byte, n)
	sawStats := make([]bool, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			jr := submitJob(t, ts.URL, `{"query":`+queryBody+`}`)
			sr, err := http.Get(ts.URL + jr.EventsURL)
			if err != nil {
				errs[i] = err
				return
			}
			defer sr.Body.Close()
			if ct := sr.Header.Get("Content-Type"); ct != "text/event-stream" {
				errs[i] = fmt.Errorf("stream content type = %q", ct)
				return
			}
			frames := readSSE(t, sr.Body)
			if len(frames) == 0 {
				errs[i] = fmt.Errorf("empty stream")
				return
			}
			for _, f := range frames {
				if f.event == "stats" {
					sawStats[i] = true
				}
			}
			last := frames[len(frames)-1]
			if last.event != "result" {
				errs[i] = fmt.Errorf("terminal frame is %q, want result", last.event)
				return
			}
			// The SSE grammar: data lines joined by newlines; api.Encode
			// bodies end with one trailing newline.
			streamed[i] = []byte(last.payload() + "\n")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("stream %d: %v", i, err)
		}
	}
	for i, body := range streamed {
		if !sawStats[i] {
			t.Errorf("stream %d carried no stats frame", i)
		}
		if got := normalizeQuery(t, body); !bytes.Equal(got, ref) {
			t.Errorf("stream %d result diverged from the synchronous body:\n--- streamed ---\n%s\n--- sync ---\n%s",
				i, got, ref)
		}
	}

	// A late subscriber to a finished job replays the terminal frames.
	jr := submitJob(t, ts.URL, `{"query":`+queryBody+`}`)
	deadline := time.Now().Add(10 * time.Second)
	for jobStatus(t, ts.URL+jr.StatusURL).Status != api.JobDone {
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}
	sr, err := http.Get(ts.URL + jr.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	frames := readSSE(t, sr.Body)
	sr.Body.Close()
	if len(frames) == 0 || frames[len(frames)-1].event != "result" {
		t.Fatalf("late subscription frames = %+v, want terminal result replay", frames)
	}
	if got := normalizeQuery(t, []byte(frames[len(frames)-1].payload()+"\n")); !bytes.Equal(got, ref) {
		t.Error("late-replayed result diverged from the synchronous body")
	}
}

// TestJobLifecycle walks queued → running → done through the status endpoint,
// with the queue position visible while the job waits behind a stalled worker.
func TestJobLifecycle(t *testing.T) {
	s, ts := testServer(t, Config{Concurrency: 1, QueueDepth: 8})

	// Occupy the single worker so the job stays observably queued.
	gate := make(chan struct{})
	running := make(chan struct{})
	if _, err := s.pool.enqueue(0, func() { close(running); <-gate }, nil); err != nil {
		t.Fatal(err)
	}
	<-running

	jr := submitJob(t, ts.URL, `{"query":`+queryBody+`}`)
	if !strings.HasPrefix(jr.ID, "j-") || jr.APIVersion != api.Version {
		t.Errorf("acknowledgment = %+v", jr)
	}
	if jr.Status != api.JobQueued {
		t.Errorf("status at admission = %q, want queued", jr.Status)
	}
	if jr.StatusURL != "/v1/jobs/"+jr.ID || jr.EventsURL != "/v1/jobs/"+jr.ID+"/events" {
		t.Errorf("URLs = %q, %q", jr.StatusURL, jr.EventsURL)
	}

	st := jobStatus(t, ts.URL+jr.StatusURL)
	if st.Status != api.JobQueued || st.Kind != "query" || st.ID != jr.ID {
		t.Errorf("queued status = %+v", st)
	}
	if st.QueuePosition < 1 {
		t.Errorf("queue position = %d, want >= 1 while queued", st.QueuePosition)
	}

	close(gate)
	deadline := time.Now().Add(10 * time.Second)
	for {
		st = jobStatus(t, ts.URL+jr.StatusURL)
		if st.Status == api.JobDone {
			break
		}
		if st.QueuePosition != 0 && st.Status != api.JobQueued {
			t.Errorf("queue position %d reported in status %q", st.QueuePosition, st.Status)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in status %q", st.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.Error != nil {
		t.Errorf("done with error: %+v", st.Error)
	}
	if st.Stats == nil || st.Stats.StatesExplored == 0 {
		t.Errorf("done without a final stats snapshot: %+v", st.Stats)
	}
}

func TestJobBadRequests(t *testing.T) {
	_, ts := testServer(t, Config{Concurrency: 1})
	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"not json", `{`, http.StatusBadRequest, api.CodeBadRequest},
		{"neither set", `{}`, http.StatusBadRequest, api.CodeBadRequest},
		{"both set", `{"analyze":{"program":"su"},"query":` + queryBody + `}`, http.StatusBadRequest, api.CodeBadRequest},
		{"unknown program", `{"analyze":{"program":"emacs"}}`, http.StatusNotFound, api.CodeNotFound},
		{"invalid query", `{"query":{"attack":1}}`, http.StatusBadRequest, api.CodeBadRequest},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/jobs", tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
			continue
		}
		if e := decodeError(t, body); e.Error.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, e.Error.Code, tc.code)
		}
	}
	for _, ep := range []string{"/v1/jobs/j-nope", "/v1/jobs/j-nope/events"} {
		resp, err := http.Get(ts.URL + ep)
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", ep, resp.StatusCode)
		}
		if e := decodeError(t, []byte(body)); e.Error.Code != api.CodeNotFound {
			t.Errorf("GET %s code = %q", ep, e.Error.Code)
		}
	}
}

// TestRequestIDPropagation pins the correlation-id contract: the X-Request-ID
// header is echoed (or minted) on every response, stored on jobs, and carried
// into the handlers' structured logs.
func TestRequestIDPropagation(t *testing.T) {
	var logBuf syncBuffer
	lg, err := telemetry.NewLogger(&logBuf, "debug", true)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := testServer(t, Config{Concurrency: 1, Logger: lg})

	// Client-supplied id: echoed on the response and bound to the job.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
		strings.NewReader(`{"query":`+queryBody+`}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", "corr-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw := readAll(t, resp)
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "corr-123" {
		t.Errorf("response X-Request-ID = %q, want the client's", got)
	}
	var jr api.JobResponse
	if err := json.Unmarshal([]byte(raw), &jr); err != nil {
		t.Fatalf("%v\n%s", err, raw)
	}
	if jr.RequestID != "corr-123" {
		t.Errorf("job request_id = %q, want corr-123", jr.RequestID)
	}
	if st := jobStatus(t, ts.URL+jr.StatusURL); st.RequestID != "corr-123" {
		t.Errorf("status request_id = %q", st.RequestID)
	}

	// No header: the server mints one.
	resp2, err := http.Get(ts.URL + "/v1/programs")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.Header.Get("X-Request-ID") == "" {
		t.Error("no X-Request-ID minted for a bare request")
	}

	// The access log and the job's execution log both carry the id.
	deadline := time.Now().Add(10 * time.Second)
	for jobStatus(t, ts.URL+jr.StatusURL).Status != api.JobDone {
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}
	logs := logBuf.String()
	if !strings.Contains(logs, `"request_id":"corr-123"`) {
		t.Errorf("structured logs never mention the correlation id:\n%s", logs)
	}
	sawAccess := false
	for _, line := range strings.Split(logs, "\n") {
		if strings.Contains(line, `"msg":"http request"`) && strings.Contains(line, `"request_id":"corr-123"`) {
			sawAccess = true
		}
	}
	if !sawAccess {
		t.Errorf("no access-log record with the correlation id:\n%s", logs)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer for concurrent slog output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestVersionEndpoint(t *testing.T) {
	_, ts := testServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/version")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/version = %d", resp.StatusCode)
	}
	var vr api.VersionResponse
	if err := json.Unmarshal([]byte(body), &vr); err != nil {
		t.Fatalf("not a VersionResponse: %v\n%s", err, body)
	}
	if vr.APIVersion != api.Version {
		t.Errorf("api_version = %q", vr.APIVersion)
	}
	if vr.Module == "" || vr.GoVersion == "" {
		t.Errorf("build identity incomplete: %+v", vr.VersionInfo)
	}
}

// TestJobMetrics asserts the observability satellites: job counters, the
// dropped-events counter, and the per-route serving histograms are all in the
// /metrics exposition — the histogram schema from boot, the counters live.
func TestJobMetrics(t *testing.T) {
	_, ts := testServer(t, Config{Concurrency: 1})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	boot := readAll(t, resp)
	resp.Body.Close()
	for _, want := range []string{
		"rosa_recorder_dropped_events_total",
		"server_jobs_total",
		"server_jobs_resident",
		"server_queue_wait_ns_count",
		"server_http_query_200_ns_count",
		"server_http_jobs_202_ns_count",
		"server_http_job_events_200_ns_count",
	} {
		if !strings.Contains(boot, want) {
			t.Errorf("/metrics missing %s at boot", want)
		}
	}

	jr := submitJob(t, ts.URL, `{"query":`+queryBody+`}`)
	deadline := time.Now().Add(10 * time.Second)
	for jobStatus(t, ts.URL+jr.StatusURL).Status != api.JobDone {
		if time.Now().After(deadline) {
			t.Fatal("job did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := metricValue(t, ts.URL, "server_jobs_total"); got != 1 {
		t.Errorf("server_jobs_total = %d, want 1", got)
	}
	if got := metricValue(t, ts.URL, "server_jobs_resident"); got < 1 {
		t.Errorf("server_jobs_resident = %d, want >= 1", got)
	}
	// The submission itself ran through the instrumented mux.
	if got := metricValue(t, ts.URL, "server_http_jobs_202_ns_count"); got < 1 {
		t.Errorf("server_http_jobs_202_ns_count = %d, want >= 1", got)
	}
	if got := metricValue(t, ts.URL, "server_queue_wait_ns_count"); got < 1 {
		t.Errorf("server_queue_wait_ns_count = %d, want >= 1", got)
	}
}

// TestJobEventsDrainShutdownFrame pins the drain satellite at the handler
// level: a subscriber watching a still-pending job when drain begins receives
// a typed shutdown frame, then the terminal result once the job finishes —
// and /readyz reports 503 while the stream is still open.
func TestJobEventsDrainShutdownFrame(t *testing.T) {
	s, ts := testServer(t, Config{Concurrency: 1, QueueDepth: 8})

	gate := make(chan struct{})
	running := make(chan struct{})
	if _, err := s.pool.enqueue(0, func() { close(running); <-gate }, nil); err != nil {
		t.Fatal(err)
	}
	<-running
	jr := submitJob(t, ts.URL, `{"query":`+queryBody+`}`)

	type streamResult struct {
		frames []sseFrame
		err    error
	}
	streamDone := make(chan streamResult, 1)
	go func() {
		sr, err := http.Get(ts.URL + jr.EventsURL)
		if err != nil {
			streamDone <- streamResult{err: err}
			return
		}
		defer sr.Body.Close()
		streamDone <- streamResult{frames: readSSE(t, sr.Body)}
	}()
	// Let the subscriber attach before drain begins.
	for s.jobs.get(jr.ID).sink.Subscribers() == 0 {
		time.Sleep(time.Millisecond)
	}

	// The drain sequence Serve runs: stop admissions, signal the streams.
	s.beginDrain()
	s.pool.close()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz during drain = %d, want 503", resp.StatusCode)
	}

	close(gate) // the worker now runs the already-queued job to completion
	var res streamResult
	select {
	case res = <-streamDone:
	case <-time.After(15 * time.Second):
		t.Fatal("stream did not terminate after drain")
	}
	if res.err != nil {
		t.Fatal(res.err)
	}
	shutdownAt, resultAt := -1, -1
	for i, f := range res.frames {
		switch f.event {
		case "shutdown":
			shutdownAt = i
			if f.payload() != `{"reason":"draining"}` {
				t.Errorf("shutdown payload = %q", f.payload())
			}
		case "result":
			resultAt = i
		}
	}
	if shutdownAt == -1 {
		t.Fatalf("no shutdown frame in %+v", res.frames)
	}
	if resultAt == -1 {
		t.Fatalf("no terminal result frame in %+v", res.frames)
	}
	if shutdownAt > resultAt {
		t.Errorf("shutdown frame (%d) after result (%d)", shutdownAt, resultAt)
	}
}

// TestServeGracefulDrainWithStreamingJob runs the full stack: a real
// listener, an in-flight job with a live SSE watcher, and a shutdown signal.
// Serve must hold the connection until the stream delivers its terminal
// result frame, then return cleanly.
func TestServeGracefulDrainWithStreamingJob(t *testing.T) {
	s := New(Config{Concurrency: 1, DrainTimeout: 30 * time.Second, Logger: telemetry.Discard})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	served := make(chan error, 1)
	addrCh := make(chan net.Addr, 1)
	go func() {
		served <- s.ListenAndServe(ctx, "127.0.0.1:0", func(a net.Addr) { addrCh <- a })
	}()
	base := "http://" + (<-addrCh).String()

	jr := submitJob(t, base, `{"query":`+queryBody+`}`)
	sr, err := http.Get(base + jr.EventsURL)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()

	cancel() // drain begins while the job runs and the stream is attached

	frames := readSSE(t, sr.Body)
	if len(frames) == 0 {
		t.Fatal("stream closed without frames during drain")
	}
	if last := frames[len(frames)-1]; last.event != "result" {
		t.Errorf("terminal frame during drain = %q, want result", last.event)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
}
