package interp

import (
	"fmt"

	"privanalyzer/internal/ir"
)

// The interpreter pre-compiles each function before execution: virtual
// registers get dense integer slots, branch targets become block indices,
// and operands are resolved once. This keeps the per-instruction cost low
// enough to execute the paper's largest workload (sshd's ~63M dynamic
// instructions, Table III) in seconds.

// copKind is the opcode of a compiled instruction.
type copKind uint8

const (
	cConst copKind = iota + 1
	cBin
	cCmp
	cCall
	cCallInd
	cSyscall
	cBr
	cJmp
	cRet
	cUnreachable
)

// cval is a pre-resolved operand: a register slot or an immediate rval.
type cval struct {
	reg int  // register slot when >= 0
	val rval // immediate when reg < 0
}

// cinstr is one compiled instruction.
type cinstr struct {
	op    copKind
	dst   int // destination slot, -1 for none
	bin   ir.BinKind
	pred  ir.CmpKind
	x, y  cval
	args  []cval
	fn    string // direct-call callee or syscall name
	t1    int    // branch target block index (then / jmp target)
	t2    int    // else target
	src   ir.Instr
	hasRV bool // ret carries a value (in x)
}

// cblock is a compiled basic block.
type cblock struct {
	b      *ir.Block
	instrs []cinstr
}

// cfunc is a compiled function.
type cfunc struct {
	fn     *ir.Function
	nregs  int
	params []int
	blocks []cblock
}

// compileModule compiles every function of a verified module.
func compileModule(m *ir.Module) (map[string]*cfunc, error) {
	out := make(map[string]*cfunc, len(m.Funcs))
	for _, fn := range m.Funcs {
		cf, err := compileFunc(fn)
		if err != nil {
			return nil, err
		}
		out[fn.Name] = cf
	}
	return out, nil
}

func compileFunc(fn *ir.Function) (*cfunc, error) {
	cf := &cfunc{fn: fn}
	slots := make(map[string]int)
	slot := func(name string) int {
		if s, ok := slots[name]; ok {
			return s
		}
		s := len(slots)
		slots[name] = s
		return s
	}
	blockIdx := make(map[string]int, len(fn.Blocks))
	for i, b := range fn.Blocks {
		blockIdx[b.Name] = i
	}
	for _, p := range fn.Params {
		cf.params = append(cf.params, slot(p))
	}

	cvalOf := func(v ir.Value) (cval, error) {
		switch v.Kind {
		case ir.Reg:
			return cval{reg: slot(v.Reg)}, nil
		case ir.Imm:
			return cval{reg: -1, val: intVal(v.Imm)}, nil
		case ir.FuncRef:
			return cval{reg: -1, val: fnVal(v.Fn)}, nil
		case ir.Str:
			return cval{reg: -1, val: strVal(v.Str)}, nil
		default:
			return cval{}, fmt.Errorf("%w: zero operand in @%s", ErrRuntime, fn.Name)
		}
	}
	cvals := func(vs []ir.Value) ([]cval, error) {
		out := make([]cval, len(vs))
		for i, v := range vs {
			cv, err := cvalOf(v)
			if err != nil {
				return nil, err
			}
			out[i] = cv
		}
		return out, nil
	}
	dstOf := func(name string) int {
		if name == "" {
			return -1
		}
		return slot(name)
	}

	for _, b := range fn.Blocks {
		cb := cblock{b: b, instrs: make([]cinstr, 0, len(b.Instrs))}
		for _, in := range b.Instrs {
			ci := cinstr{src: in, dst: -1, t1: -1, t2: -1}
			var err error
			switch in := in.(type) {
			case *ir.ConstInstr:
				ci.op = cConst
				ci.dst = dstOf(in.Dst)
				ci.x = cval{reg: -1, val: intVal(in.Val)}
			case *ir.BinInstr:
				ci.op = cBin
				ci.dst = dstOf(in.Dst)
				ci.bin = in.Op
				if ci.x, err = cvalOf(in.X); err != nil {
					return nil, err
				}
				if ci.y, err = cvalOf(in.Y); err != nil {
					return nil, err
				}
			case *ir.CmpInstr:
				ci.op = cCmp
				ci.dst = dstOf(in.Dst)
				ci.pred = in.Pred
				if ci.x, err = cvalOf(in.X); err != nil {
					return nil, err
				}
				if ci.y, err = cvalOf(in.Y); err != nil {
					return nil, err
				}
			case *ir.CallInstr:
				ci.op = cCall
				ci.dst = dstOf(in.Dst)
				ci.fn = in.Callee
				if ci.args, err = cvals(in.Args); err != nil {
					return nil, err
				}
			case *ir.CallIndInstr:
				ci.op = cCallInd
				ci.dst = dstOf(in.Dst)
				if ci.x, err = cvalOf(in.Fp); err != nil {
					return nil, err
				}
				if ci.args, err = cvals(in.Args); err != nil {
					return nil, err
				}
			case *ir.SyscallInstr:
				ci.op = cSyscall
				ci.dst = dstOf(in.Dst)
				ci.fn = in.Name
				if ci.args, err = cvals(in.Args); err != nil {
					return nil, err
				}
			case *ir.BrInstr:
				ci.op = cBr
				if ci.x, err = cvalOf(in.Cond); err != nil {
					return nil, err
				}
				ci.t1 = blockIdx[in.Then]
				ci.t2 = blockIdx[in.Else]
			case *ir.JmpInstr:
				ci.op = cJmp
				ci.t1 = blockIdx[in.Target]
			case *ir.RetInstr:
				ci.op = cRet
				if !in.Val.IsZero() {
					ci.hasRV = true
					if ci.x, err = cvalOf(in.Val); err != nil {
						return nil, err
					}
				}
			case *ir.UnreachableInstr:
				ci.op = cUnreachable
			default:
				return nil, fmt.Errorf("%w: unknown instruction %T", ErrRuntime, in)
			}
			cb.instrs = append(cb.instrs, ci)
		}
		cf.blocks = append(cf.blocks, cb)
	}
	cf.nregs = len(slots)
	return cf, nil
}
