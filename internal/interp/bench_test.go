package interp

import (
	"testing"

	"privanalyzer/internal/caps"
	"privanalyzer/internal/ir"
	"privanalyzer/internal/vkernel"
)

// buildLoop constructs a tight arithmetic loop executing ~12M instructions.
func buildLoop() *ir.Module {
	b := ir.NewModuleBuilder("bench")
	f := b.Func("main")
	f.Block("entry").Const("i", 0).Jmp("header")
	f.Block("header").
		Cmp("c", ir.Lt, ir.R("i"), ir.I(1_000_000)).
		Br(ir.R("c"), "body", "exit")
	f.Block("body").
		Compute(10).
		Bin("i", ir.Add, ir.R("i"), ir.I(1)).
		Jmp("header")
	f.Block("exit").Ret()
	return b.MustBuild()
}

// BenchmarkInterpreter measures raw execution throughput (bytes = counted
// instructions), the budget behind the sshd workload's ~63M instructions.
func BenchmarkInterpreter(b *testing.B) {
	m := buildLoop()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := vkernel.New()
		k.Spawn("bench", caps.NewCreds(0, 0, 0))
		res, err := Run(m, k, Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(res.Steps)
	}
}

// BenchmarkInterpreterWithStepHook measures the ChronoPriv-style overhead of
// observing every instruction.
func BenchmarkInterpreterWithStepHook(b *testing.B) {
	m := buildLoop()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := vkernel.New()
		k.Spawn("bench", caps.NewCreds(0, 0, 0))
		var n int64
		res, err := Run(m, k, Options{
			OnStep: func(*ir.Function, *ir.Block, ir.Instr, caps.PhaseKey) { n++ },
		})
		if err != nil {
			b.Fatal(err)
		}
		if n != res.Steps {
			b.Fatal("hook count mismatch")
		}
		b.SetBytes(res.Steps)
	}
}
