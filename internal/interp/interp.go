// Package interp executes IR modules against a simulated kernel. It is the
// dynamic-execution substrate ChronoPriv measures: each counted instruction
// fires a step hook carrying the process's current measurement phase
// (permitted privilege set plus the six user/group IDs), and syscall
// instructions are dispatched to the vkernel, which enforces the same
// capability and DAC semantics the ROSA model checker reasons about.
//
// Functions are pre-compiled to a register-slot form (see compile.go) so
// that the paper's largest dynamic workload — sshd's ~63M instructions in
// Table III — executes in seconds.
package interp

import (
	"errors"
	"fmt"
	"log/slog"
	"time"

	"privanalyzer/internal/caps"
	"privanalyzer/internal/ir"
	"privanalyzer/internal/vkernel"
)

// Interpreter failure modes.
var (
	// ErrOutOfFuel means the run exceeded Options.Fuel dynamic instructions.
	ErrOutOfFuel = errors.New("interp: out of fuel")
	// ErrUnreachable means the program executed an unreachable instruction,
	// which terminates the program (LLVM semantics; the paper's ChronoPriv
	// omits unreachable from its counts for the same reason).
	ErrUnreachable = errors.New("interp: executed unreachable")
	// ErrRuntime wraps all other dynamic failures (undefined registers,
	// division by zero, bad indirect call, stack overflow).
	ErrRuntime = errors.New("interp: runtime error")
)

// defaultFuel bounds runs that forget to set Options.Fuel.
const defaultFuel = int64(1_000_000_000)

// maxCallDepth bounds recursion.
const maxCallDepth = 10_000

// StepHook observes one counted instruction about to execute. phase is the
// process's measurement phase before the instruction runs.
type StepHook func(fn *ir.Function, blk *ir.Block, in ir.Instr, phase caps.PhaseKey)

// Interceptor may claim a syscall before the kernel sees it; ChronoPriv's
// runtime uses this for its instrumentation markers. Returning handled=false
// passes the call through to the kernel.
type Interceptor func(name string, args []vkernel.Arg) (handled bool, ret int64, err error)

// Options configures a run.
type Options struct {
	// Fuel bounds the number of dynamic instructions; 0 means a large
	// default.
	Fuel int64
	// MainArgs binds the parameters of main, in order; missing ones are 0.
	MainArgs []int64
	// OnStep, if set, observes every counted instruction.
	OnStep StepHook
	// OnSteps, if set, observes counted instructions in batches: it fires
	// at every phase boundary (credentials change only inside syscalls) and
	// once at run end, with the number of instructions executed under the
	// given phase since the previous report. Totals per phase are identical
	// to OnStep's, at a fraction of the cost — ChronoPriv's bulk counting
	// path. Independent of OnStep; both may be set.
	OnSteps func(n int64, phase caps.PhaseKey)
	// Intercept, if set, may claim syscalls before kernel dispatch.
	// Intercepted syscalls are not counted as executed instructions.
	Intercept Interceptor
	// Profile collects the hot-block profile (counted instructions per
	// basic block), reported in Result.Profile. The cost is one slice
	// increment per instruction; disabled it costs a nil check.
	Profile bool
	// Logger, if set, receives a debug record when the run finishes (steps,
	// elapsed time, exit mode). Nil keeps the interpreter silent.
	Logger *slog.Logger
}

// Result summarises a completed run.
type Result struct {
	// Ret is main's return value (0 for a void return or exit).
	Ret int64
	// Steps is the number of counted instructions executed.
	Steps int64
	// Exited reports whether the program ended via the exit syscall rather
	// than returning from main.
	Exited bool
	// Profile is the hot-block profile; nil unless Options.Profile was set.
	Profile *BlockProfile
	// Elapsed is the wall-clock execution time of the run.
	Elapsed time.Duration
}

// rkind discriminates runtime values.
type rkind uint8

const (
	rInt rkind = iota + 1
	rStr
	rFn
)

// rval is a runtime value: an integer, a string, or a function reference.
type rval struct {
	kind rkind
	i    int64
	s    string
	fn   string
}

func intVal(v int64) rval    { return rval{kind: rInt, i: v} }
func strVal(s string) rval   { return rval{kind: rStr, s: s} }
func fnVal(name string) rval { return rval{kind: rFn, fn: name} }

// machine is the per-run interpreter state.
type machine struct {
	m      *ir.Module
	code   map[string]*cfunc
	k      *vkernel.Kernel
	opts   Options
	fuel   int64
	steps  int64
	depth  int
	exited bool
	prof   *BlockProfile // nil unless Options.Profile

	// phase caches the current process's measurement phase. Credentials
	// change only inside kernel syscalls, so the cache is refreshed after
	// every Invoke and read everywhere else — the step hooks never pay a
	// per-instruction phase computation.
	phase caps.PhaseKey
	// pending counts instructions executed under phase since the last
	// OnSteps report.
	pending int64
}

// flushSteps reports the pending instruction batch to OnSteps.
func (vm *machine) flushSteps() {
	if vm.pending > 0 && vm.opts.OnSteps != nil {
		vm.opts.OnSteps(vm.pending, vm.phase)
	}
	vm.pending = 0
}

// syncPhase refreshes the cached phase after a syscall, flushing the batch
// executed under the old phase first.
func (vm *machine) syncPhase() {
	ph := vm.k.Current().Creds.Phase()
	if ph != vm.phase {
		vm.flushSteps()
		vm.phase = ph
	}
}

// Run executes module m's main function on kernel k. The kernel must have a
// current process (the program under measurement). The module must verify.
func Run(m *ir.Module, k *vkernel.Kernel, opts Options) (*Result, error) {
	if err := m.Verify(); err != nil {
		return nil, fmt.Errorf("interp: %w", err)
	}
	main := m.Main()
	if main == nil {
		return nil, fmt.Errorf("%w: module %q has no main", ErrRuntime, m.Name)
	}
	if k.Current() == nil {
		return nil, fmt.Errorf("%w: kernel has no current process", ErrRuntime)
	}
	code, err := compileModule(m)
	if err != nil {
		return nil, err
	}
	vm := &machine{m: m, code: code, k: k, opts: opts, fuel: opts.Fuel}
	vm.phase = k.Current().Creds.Phase()
	if vm.fuel <= 0 {
		vm.fuel = defaultFuel
	}
	if opts.Profile {
		vm.prof = newBlockProfile()
	}
	cf := code["main"]
	args := make([]rval, len(main.Params))
	for i := range main.Params {
		if i < len(opts.MainArgs) {
			args[i] = intVal(opts.MainArgs[i])
		} else {
			args[i] = intVal(0)
		}
	}
	began := time.Now()
	ret, err := vm.call(cf, args)
	vm.flushSteps()
	if err != nil {
		return nil, err
	}
	res := &Result{Steps: vm.steps, Exited: vm.exited, Profile: vm.prof, Elapsed: time.Since(began)}
	if ret.kind == rInt {
		res.Ret = ret.i
	}
	if opts.Logger != nil {
		opts.Logger.Debug("interp run done",
			"component", "interp",
			"module", m.Name,
			"steps", res.Steps,
			"exited", res.Exited,
			"elapsed", res.Elapsed)
	}
	return res, nil
}

// eval resolves a pre-compiled operand. It is small enough to inline; the
// error construction lives in undefErr to keep it that way.
func (vm *machine) eval(cv cval, regs []rval, cf *cfunc) (rval, error) {
	if cv.reg < 0 {
		return cv.val, nil
	}
	v := regs[cv.reg]
	if v.kind == 0 {
		return rval{}, undefErr(cf)
	}
	return v, nil
}

func undefErr(cf *cfunc) error {
	return fmt.Errorf("%w: undefined register in @%s", ErrRuntime, cf.fn.Name)
}

// intOperand resolves an operand for the integer fast path: the value and
// kind, without copying the full rval. Callers check the kind and fall back
// to eval for exact error attribution when it is not rInt.
func intOperand(cv *cval, regs []rval) (int64, rkind) {
	if cv.reg < 0 {
		return cv.val.i, cv.val.kind
	}
	r := &regs[cv.reg]
	return r.i, r.kind
}

// setInt overwrites a register with an integer without touching the string
// fields, so the store needs no GC write barrier — the difference is
// measurable at tens of millions of instructions. A stale string left in an
// rInt register is unreadable: kind gates every access.
func setInt(r *rval, v int64) {
	r.kind = rInt
	r.i = v
}

// call executes one compiled function to completion.
func (vm *machine) call(cf *cfunc, args []rval) (rval, error) {
	if vm.depth >= maxCallDepth {
		return rval{}, fmt.Errorf("%w: call depth exceeded in @%s", ErrRuntime, cf.fn.Name)
	}
	vm.depth++
	defer func() { vm.depth-- }()

	regs := make([]rval, cf.nregs)
	for i, slot := range cf.params {
		if i < len(args) {
			regs[slot] = args[i]
		} else {
			regs[slot] = intVal(0)
		}
	}

	hook := vm.opts.OnStep
	var bcounts []int64
	if vm.prof != nil {
		bcounts = vm.prof.slots(cf)
	}
	bi := 0
block:
	for {
		cb := &cf.blocks[bi]
		for ii := range cb.instrs {
			in := &cb.instrs[ii]

			// Instrumentation markers claimed by the interceptor are
			// invisible to counting and to the kernel.
			if in.op == cSyscall && vm.opts.Intercept != nil {
				kargs, err := vm.kernelArgs(in.args, regs, cf)
				if err != nil {
					return rval{}, err
				}
				handled, r, herr := vm.opts.Intercept(in.fn, kargs)
				if herr != nil {
					return rval{}, fmt.Errorf("%w: interceptor: %v", ErrRuntime, herr)
				}
				if handled {
					if in.dst >= 0 {
						regs[in.dst] = intVal(r)
					}
					continue
				}
			}

			if in.op == cUnreachable {
				return rval{}, fmt.Errorf("%w at @%s:%s", ErrUnreachable, cf.fn.Name, cb.b.Name)
			}
			if vm.steps >= vm.fuel {
				return rval{}, fmt.Errorf("%w after %d instructions", ErrOutOfFuel, vm.steps)
			}
			if hook != nil {
				hook(cf.fn, cb.b, in.src, vm.phase)
			}
			vm.steps++
			vm.pending++
			if bcounts != nil {
				bcounts[bi]++
			}

			switch in.op {
			case cConst:
				if in.dst >= 0 {
					setInt(&regs[in.dst], in.x.val.i) // cConst immediates are always integers
				}
			case cBin:
				xi, xk := intOperand(&in.x, regs)
				yi, yk := intOperand(&in.y, regs)
				if xk == rInt && yk == rInt {
					v, err := binInt(in.bin, xi, yi)
					if err != nil {
						return rval{}, err
					}
					if in.dst >= 0 {
						setInt(&regs[in.dst], v)
					}
					continue
				}
				// Rare path: function-pointer arithmetic, undefined
				// registers, or type errors.
				x, err := vm.eval(in.x, regs, cf)
				if err != nil {
					return rval{}, err
				}
				y, err := vm.eval(in.y, regs, cf)
				if err != nil {
					return rval{}, err
				}
				v, err := evalBin(in.bin, x, y)
				if err != nil {
					return rval{}, err
				}
				if in.dst >= 0 {
					regs[in.dst] = v
				}
			case cCmp:
				xi, xk := intOperand(&in.x, regs)
				yi, yk := intOperand(&in.y, regs)
				if xk != rInt || yk != rInt {
					// Re-resolve through eval so undefined registers get
					// their exact error.
					if _, err := vm.eval(in.x, regs, cf); err != nil {
						return rval{}, err
					}
					if _, err := vm.eval(in.y, regs, cf); err != nil {
						return rval{}, err
					}
					return rval{}, fmt.Errorf("%w: cmp on non-integer operands", ErrRuntime)
				}
				var b bool
				switch in.pred {
				case ir.Eq:
					b = xi == yi
				case ir.Ne:
					b = xi != yi
				case ir.Lt:
					b = xi < yi
				case ir.Le:
					b = xi <= yi
				case ir.Gt:
					b = xi > yi
				case ir.Ge:
					b = xi >= yi
				default:
					return rval{}, fmt.Errorf("%w: unknown predicate", ErrRuntime)
				}
				if in.dst >= 0 {
					if b {
						setInt(&regs[in.dst], 1)
					} else {
						setInt(&regs[in.dst], 0)
					}
				}
			case cCall:
				r, err := vm.dispatchCall(vm.code[in.fn], in, regs, cf)
				if err != nil {
					return rval{}, err
				}
				if vm.exited {
					return rval{}, nil
				}
				if in.dst >= 0 {
					regs[in.dst] = r
				}
			case cCallInd:
				fp, err := vm.eval(in.x, regs, cf)
				if err != nil {
					return rval{}, err
				}
				if fp.kind != rFn {
					return rval{}, fmt.Errorf("%w: indirect call through non-function value in @%s", ErrRuntime, cf.fn.Name)
				}
				callee := vm.code[fp.fn]
				if callee == nil {
					return rval{}, fmt.Errorf("%w: indirect call to undefined @%s", ErrRuntime, fp.fn)
				}
				r, err := vm.dispatchCall(callee, in, regs, cf)
				if err != nil {
					return rval{}, err
				}
				if vm.exited {
					return rval{}, nil
				}
				if in.dst >= 0 {
					regs[in.dst] = r
				}
			case cSyscall:
				kargs, err := vm.kernelArgs(in.args, regs, cf)
				if err != nil {
					return rval{}, err
				}
				r, err := vm.k.Invoke(in.fn, kargs)
				if err != nil {
					return rval{}, fmt.Errorf("%w: syscall %s: %v", ErrRuntime, in.fn, err)
				}
				// The syscall instruction itself was counted under the phase
				// in effect before it ran; refresh the cache for whatever
				// follows (syscalls are the only credential mutators).
				vm.syncPhase()
				if in.dst >= 0 {
					regs[in.dst] = intVal(r)
				}
				if in.fn == "exit" {
					vm.exited = true
					return rval{}, nil
				}
			case cBr:
				ci, ck := intOperand(&in.x, regs)
				if ck != rInt {
					if _, err := vm.eval(in.x, regs, cf); err != nil {
						return rval{}, err
					}
					return rval{}, fmt.Errorf("%w: branch on non-integer in @%s", ErrRuntime, cf.fn.Name)
				}
				if ci != 0 {
					bi = in.t1
				} else {
					bi = in.t2
				}
				continue block
			case cJmp:
				bi = in.t1
				continue block
			case cRet:
				if !in.hasRV {
					return intVal(0), nil
				}
				return vm.eval(in.x, regs, cf)
			}
		}
		return rval{}, fmt.Errorf("%w: block @%s:%s fell through", ErrRuntime, cf.fn.Name, cb.b.Name)
	}
}

// dispatchCall evaluates call arguments and invokes the callee.
func (vm *machine) dispatchCall(callee *cfunc, in *cinstr, regs []rval, cf *cfunc) (rval, error) {
	args := make([]rval, len(in.args))
	for i, a := range in.args {
		v, err := vm.eval(a, regs, cf)
		if err != nil {
			return rval{}, err
		}
		args[i] = v
	}
	return vm.call(callee, args)
}

// kernelArgs converts operands to kernel syscall arguments. Function
// references become string arguments carrying the function name (used by the
// signal syscall's handler argument).
func (vm *machine) kernelArgs(cvs []cval, regs []rval, cf *cfunc) ([]vkernel.Arg, error) {
	out := make([]vkernel.Arg, len(cvs))
	for i, cv := range cvs {
		v, err := vm.eval(cv, regs, cf)
		if err != nil {
			return nil, err
		}
		switch v.kind {
		case rInt:
			out[i] = vkernel.IntArg(v.i)
		case rStr:
			out[i] = vkernel.StrArg(v.s)
		case rFn:
			out[i] = vkernel.StrArg("@" + v.fn)
		}
	}
	return out, nil
}

// evalBin applies a binary operation. Function-pointer arithmetic (fn + 0)
// keeps the reference, supporting the address-taken idiom used by
// indirect-call models.
func evalBin(op ir.BinKind, x, y rval) (rval, error) {
	if op == ir.Add {
		if x.kind == rFn && y.kind == rInt && y.i == 0 {
			return x, nil
		}
		if y.kind == rFn && x.kind == rInt && x.i == 0 {
			return y, nil
		}
	}
	if x.kind != rInt || y.kind != rInt {
		return rval{}, fmt.Errorf("%w: %s on non-integer operands", ErrRuntime, op)
	}
	v, err := binInt(op, x.i, y.i)
	if err != nil {
		return rval{}, err
	}
	return intVal(v), nil
}

// binInt applies a binary operation to two integers — the interpreter's
// arithmetic fast path.
func binInt(op ir.BinKind, x, y int64) (int64, error) {
	switch op {
	case ir.Add:
		return x + y, nil
	case ir.Sub:
		return x - y, nil
	case ir.Mul:
		return x * y, nil
	case ir.Div:
		if y == 0 {
			return 0, fmt.Errorf("%w: division by zero", ErrRuntime)
		}
		return x / y, nil
	case ir.Rem:
		if y == 0 {
			return 0, fmt.Errorf("%w: remainder by zero", ErrRuntime)
		}
		return x % y, nil
	case ir.And:
		return x & y, nil
	case ir.Or:
		return x | y, nil
	case ir.Xor:
		return x ^ y, nil
	case ir.Shl:
		return x << (uint64(y) & 63), nil
	case ir.Shr:
		return x >> (uint64(y) & 63), nil
	default:
		return 0, fmt.Errorf("%w: unknown binary op", ErrRuntime)
	}
}
