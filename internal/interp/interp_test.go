package interp

import (
	"errors"
	"testing"

	"privanalyzer/internal/caps"
	"privanalyzer/internal/ir"
	"privanalyzer/internal/vkernel"
)

func newKernel(perm caps.Set) *vkernel.Kernel {
	k := vkernel.New()
	k.AddFile(vkernel.File{Path: "/etc", Owner: 0, Group: 0, Perms: vkernel.MustMode("rwxr-xr-x"), IsDir: true})
	k.AddFile(vkernel.File{Path: "/etc/shadow", Owner: 0, Group: 42, Perms: vkernel.MustMode("rw-r-----")})
	k.Spawn("prog", caps.NewCreds(1000, 1000, perm))
	return k
}

func run(t *testing.T, m *ir.Module, perm caps.Set, opts Options) (*Result, *vkernel.Kernel) {
	t.Helper()
	k := newKernel(perm)
	res, err := Run(m, k, opts)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res, k
}

func TestArithmeticAndReturn(t *testing.T) {
	b := ir.NewModuleBuilder("m")
	f := b.Func("main")
	f.Block("entry").
		Const("x", 6).
		Bin("y", ir.Mul, ir.R("x"), ir.I(7)).
		RetVal(ir.R("y"))
	res, _ := run(t, b.MustBuild(), 0, Options{})
	if res.Ret != 42 {
		t.Errorf("Ret = %d, want 42", res.Ret)
	}
	if res.Steps != 3 {
		t.Errorf("Steps = %d, want 3", res.Steps)
	}
}

func TestAllBinOps(t *testing.T) {
	tests := []struct {
		op   ir.BinKind
		x, y int64
		want int64
	}{
		{ir.Add, 5, 3, 8},
		{ir.Sub, 5, 3, 2},
		{ir.Mul, 5, 3, 15},
		{ir.Div, 7, 2, 3},
		{ir.Rem, 7, 2, 1},
		{ir.And, 6, 3, 2},
		{ir.Or, 6, 3, 7},
		{ir.Xor, 6, 3, 5},
		{ir.Shl, 1, 4, 16},
		{ir.Shr, 16, 3, 2},
	}
	for _, tt := range tests {
		b := ir.NewModuleBuilder("m")
		f := b.Func("main")
		f.Block("entry").
			Bin("r", tt.op, ir.I(tt.x), ir.I(tt.y)).
			RetVal(ir.R("r"))
		res, _ := run(t, b.MustBuild(), 0, Options{})
		if res.Ret != tt.want {
			t.Errorf("%s(%d,%d) = %d, want %d", tt.op, tt.x, tt.y, res.Ret, tt.want)
		}
	}
}

func TestCmpAndBranch(t *testing.T) {
	for _, tt := range []struct {
		pred ir.CmpKind
		x, y int64
		want int64
	}{
		{ir.Eq, 2, 2, 1}, {ir.Eq, 2, 3, 0},
		{ir.Ne, 2, 3, 1}, {ir.Lt, 2, 3, 1},
		{ir.Le, 3, 3, 1}, {ir.Gt, 4, 3, 1},
		{ir.Ge, 2, 3, 0},
	} {
		b := ir.NewModuleBuilder("m")
		f := b.Func("main")
		f.Block("entry").
			Cmp("c", tt.pred, ir.I(tt.x), ir.I(tt.y)).
			Br(ir.R("c"), "yes", "no")
		f.Block("yes").RetVal(ir.I(1))
		f.Block("no").RetVal(ir.I(0))
		res, _ := run(t, b.MustBuild(), 0, Options{})
		if res.Ret != tt.want {
			t.Errorf("cmp %s %d,%d branch = %d, want %d", tt.pred, tt.x, tt.y, res.Ret, tt.want)
		}
	}
}

func TestLoopExecutesExactTripCount(t *testing.T) {
	b := ir.NewModuleBuilder("m")
	f := b.Func("main")
	f.Block("entry").Const("i", 0).Const("acc", 0).Jmp("header")
	f.Block("header").
		Cmp("c", ir.Lt, ir.R("i"), ir.I(100)).
		Br(ir.R("c"), "body", "exit")
	f.Block("body").
		Bin("acc", ir.Add, ir.R("acc"), ir.R("i")).
		Bin("i", ir.Add, ir.R("i"), ir.I(1)).
		Jmp("header")
	f.Block("exit").RetVal(ir.R("acc"))
	res, _ := run(t, b.MustBuild(), 0, Options{})
	if res.Ret != 4950 {
		t.Errorf("sum = %d, want 4950", res.Ret)
	}
	// entry(3) + header(2)*101 + body(3)*100 + exit(1)
	want := int64(3 + 2*101 + 3*100 + 1)
	if res.Steps != want {
		t.Errorf("Steps = %d, want %d", res.Steps, want)
	}
}

func TestCallsAndParams(t *testing.T) {
	b := ir.NewModuleBuilder("m")
	f := b.Func("main")
	f.Block("entry").
		CallTo("r", "double", ir.I(21)).
		RetVal(ir.R("r"))
	d := b.Func("double", "n")
	d.Block("entry").
		Bin("m", ir.Mul, ir.R("n"), ir.I(2)).
		RetVal(ir.R("m"))
	res, _ := run(t, b.MustBuild(), 0, Options{})
	if res.Ret != 42 {
		t.Errorf("Ret = %d", res.Ret)
	}
}

func TestIndirectCall(t *testing.T) {
	b := ir.NewModuleBuilder("m")
	f := b.Func("main")
	f.Block("entry").
		Bin("fp", ir.Add, ir.F("triple"), ir.I(0)).
		CallInd(ir.R("fp"), ir.I(5)).
		CallTo("r", "triple", ir.I(14)).
		RetVal(ir.R("r"))
	tr := b.Func("triple", "n")
	tr.Block("entry").
		Bin("m", ir.Mul, ir.R("n"), ir.I(3)).
		RetVal(ir.R("m"))
	res, _ := run(t, b.MustBuild(), 0, Options{})
	if res.Ret != 42 {
		t.Errorf("Ret = %d", res.Ret)
	}
}

func TestRecursionWithBase(t *testing.T) {
	// fact(10) via recursion.
	b := ir.NewModuleBuilder("m")
	f := b.Func("main")
	f.Block("entry").CallTo("r", "fact", ir.I(10)).RetVal(ir.R("r"))
	fa := b.Func("fact", "n")
	fa.Block("entry").
		Cmp("c", ir.Le, ir.R("n"), ir.I(1)).
		Br(ir.R("c"), "base", "rec")
	fa.Block("base").RetVal(ir.I(1))
	fa.Block("rec").
		Bin("n1", ir.Sub, ir.R("n"), ir.I(1)).
		CallTo("sub", "fact", ir.R("n1")).
		Bin("r", ir.Mul, ir.R("n"), ir.R("sub")).
		RetVal(ir.R("r"))
	res, _ := run(t, b.MustBuild(), 0, Options{})
	if res.Ret != 3628800 {
		t.Errorf("fact(10) = %d", res.Ret)
	}
}

func TestInfiniteRecursionAborts(t *testing.T) {
	b := ir.NewModuleBuilder("m")
	f := b.Func("main")
	f.Block("entry").Call("main").Ret()
	k := newKernel(0)
	_, err := Run(b.MustBuild(), k, Options{})
	if !errors.Is(err, ErrRuntime) {
		t.Errorf("err = %v, want ErrRuntime (depth)", err)
	}
}

func TestOutOfFuel(t *testing.T) {
	b := ir.NewModuleBuilder("m")
	f := b.Func("main")
	f.Block("entry").Jmp("loop")
	f.Block("loop").Const("x", 1).Jmp("loop")
	k := newKernel(0)
	_, err := Run(b.MustBuild(), k, Options{Fuel: 1000})
	if !errors.Is(err, ErrOutOfFuel) {
		t.Errorf("err = %v, want ErrOutOfFuel", err)
	}
}

func TestUnreachableAborts(t *testing.T) {
	b := ir.NewModuleBuilder("m")
	f := b.Func("main")
	f.Block("entry").Unreachable()
	k := newKernel(0)
	_, err := Run(b.MustBuild(), k, Options{})
	if !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v, want ErrUnreachable", err)
	}
}

func TestDivisionByZero(t *testing.T) {
	b := ir.NewModuleBuilder("m")
	f := b.Func("main")
	f.Block("entry").Bin("r", ir.Div, ir.I(1), ir.I(0)).Ret()
	k := newKernel(0)
	_, err := Run(b.MustBuild(), k, Options{})
	if !errors.Is(err, ErrRuntime) {
		t.Errorf("err = %v, want ErrRuntime", err)
	}
}

func TestUndefinedRegister(t *testing.T) {
	b := ir.NewModuleBuilder("m")
	f := b.Func("main")
	f.Block("entry").Bin("r", ir.Add, ir.R("ghost"), ir.I(1)).Ret()
	k := newKernel(0)
	_, err := Run(b.MustBuild(), k, Options{})
	if !errors.Is(err, ErrRuntime) {
		t.Errorf("err = %v, want ErrRuntime", err)
	}
}

func TestSyscallRoundTrip(t *testing.T) {
	// Raise CapDacReadSearch, open /etc/shadow read-only, read 100 bytes.
	drs := caps.NewSet(caps.CapDacReadSearch)
	b := ir.NewModuleBuilder("m")
	f := b.Func("main")
	f.Block("entry").
		Raise(drs).
		SyscallTo("fd", "open", ir.S("/etc/shadow"), ir.I(vkernel.OpenRead)).
		Lower(drs).
		SyscallTo("n", "read", ir.R("fd"), ir.I(100)).
		RetVal(ir.R("n"))
	res, _ := run(t, b.MustBuild(), drs, Options{})
	if res.Ret != 100 {
		t.Errorf("read returned %d, want 100", res.Ret)
	}
}

func TestSyscallPermissionFailureVisible(t *testing.T) {
	// Without privileges, open fails and the program sees -1.
	b := ir.NewModuleBuilder("m")
	f := b.Func("main")
	f.Block("entry").
		SyscallTo("fd", "open", ir.S("/etc/shadow"), ir.I(vkernel.OpenRead)).
		RetVal(ir.R("fd"))
	res, _ := run(t, b.MustBuild(), 0, Options{})
	if res.Ret != -1 {
		t.Errorf("open returned %d, want -1", res.Ret)
	}
}

func TestExitSyscallStopsRun(t *testing.T) {
	b := ir.NewModuleBuilder("m")
	f := b.Func("main")
	f.Block("entry").
		Call("die").
		Const("never", 1). // must not execute
		RetVal(ir.R("never"))
	d := b.Func("die")
	d.Block("entry").Syscall("exit", ir.I(0)).Ret()
	res, _ := run(t, b.MustBuild(), 0, Options{})
	if !res.Exited {
		t.Error("Exited = false")
	}
	// entry: call(1) + die: exit(1) = 2 counted instructions.
	if res.Steps != 2 {
		t.Errorf("Steps = %d, want 2", res.Steps)
	}
}

func TestOnStepPhases(t *testing.T) {
	setuid := caps.NewSet(caps.CapSetuid)
	b := ir.NewModuleBuilder("m")
	f := b.Func("main")
	f.Block("entry").
		Compute(3).
		Remove(setuid).
		Compute(2).
		Ret()
	var phases []caps.Set
	opts := Options{OnStep: func(_ *ir.Function, _ *ir.Block, _ ir.Instr, ph caps.PhaseKey) {
		phases = append(phases, ph.Permitted)
	}}
	res, _ := run(t, b.MustBuild(), setuid, opts)
	if res.Steps != int64(len(phases)) {
		t.Fatalf("Steps %d != hook calls %d", res.Steps, len(phases))
	}
	// 3 compute + the remove itself run with the cap still permitted; the 2
	// compute after it plus ret run without.
	wantBefore, wantAfter := 4, 3
	var before, after int
	for _, p := range phases {
		if p.Has(caps.CapSetuid) {
			before++
		} else {
			after++
		}
	}
	if before != wantBefore || after != wantAfter {
		t.Errorf("phase split = %d/%d, want %d/%d", before, after, wantBefore, wantAfter)
	}
}

func TestInterceptor(t *testing.T) {
	b := ir.NewModuleBuilder("m")
	f := b.Func("main")
	f.Block("entry").
		SyscallTo("x", "chrono_marker", ir.I(7)).
		RetVal(ir.R("x"))
	var seen []int64
	opts := Options{Intercept: func(name string, args []vkernel.Arg) (bool, int64, error) {
		if name != "chrono_marker" {
			return false, 0, nil
		}
		seen = append(seen, args[0].Int)
		return true, 99, nil
	}}
	res, _ := run(t, b.MustBuild(), 0, opts)
	if res.Ret != 99 {
		t.Errorf("intercepted ret = %d, want 99", res.Ret)
	}
	if len(seen) != 1 || seen[0] != 7 {
		t.Errorf("seen = %v", seen)
	}
	// The marker is not counted.
	if res.Steps != 1 {
		t.Errorf("Steps = %d, want 1 (ret only)", res.Steps)
	}
}

func TestMainArgs(t *testing.T) {
	b := ir.NewModuleBuilder("m")
	f := b.Func("main", "a", "b")
	f.Block("entry").Bin("r", ir.Add, ir.R("a"), ir.R("b")).RetVal(ir.R("r"))
	res, _ := run(t, b.MustBuild(), 0, Options{MainArgs: []int64{40, 2}})
	if res.Ret != 42 {
		t.Errorf("Ret = %d", res.Ret)
	}
	// Missing args default to zero.
	res2, _ := run(t, b.MustBuild(), 0, Options{})
	if res2.Ret != 0 {
		t.Errorf("Ret = %d, want 0", res2.Ret)
	}
}

func TestDeterministicSteps(t *testing.T) {
	b := ir.NewModuleBuilder("m")
	f := b.Func("main")
	f.Block("entry").Compute(50).Ret()
	m := b.MustBuild()
	r1, _ := run(t, m, 0, Options{})
	r2, _ := run(t, m, 0, Options{})
	if r1.Steps != r2.Steps {
		t.Errorf("nondeterministic step counts: %d vs %d", r1.Steps, r2.Steps)
	}
}
