package interp

import (
	"fmt"
	"sort"
	"strings"
)

// BlockProfile is the interpreter's hot-block profile: how many counted
// instructions executed inside each basic block of the run. It answers the
// ChronoPriv-adjacent question "where did the dynamic instruction count come
// from?" — the block-granularity analogue of the paper's per-phase counts.
// Enable with Options.Profile; read from Result.Profile.
//
// Like the chronopriv runtime's phase counters, the hot path touches a
// pre-resolved slot (one slice index per instruction) and pays no map or
// lock cost; the run is single-goroutine, so plain int64 counters suffice.
type BlockProfile struct {
	counts map[*cfunc][]int64 // per compiled function, one counter per block
}

func newBlockProfile() *BlockProfile {
	return &BlockProfile{counts: make(map[*cfunc][]int64)}
}

// slots returns (allocating on first use) cf's per-block counters.
func (p *BlockProfile) slots(cf *cfunc) []int64 {
	s := p.counts[cf]
	if s == nil {
		s = make([]int64, len(cf.blocks))
		p.counts[cf] = s
	}
	return s
}

// BlockCount is one profile row: a basic block and the counted instructions
// executed in it.
type BlockCount struct {
	// Fn and Block name the basic block (@fn:block).
	Fn, Block string
	// Steps is the number of counted instructions executed in the block.
	Steps int64
}

// Total returns the profile's total counted instructions (equals the run's
// Result.Steps). Nil-safe.
func (p *BlockProfile) Total() int64 {
	if p == nil {
		return 0
	}
	var total int64
	for _, slots := range p.counts {
		for _, n := range slots {
			total += n
		}
	}
	return total
}

// Top returns the n hottest blocks, sorted by descending step count with
// (fn, block) name as the deterministic tiebreak. n <= 0 returns every
// block that executed at least one instruction. Nil-safe.
func (p *BlockProfile) Top(n int) []BlockCount {
	if p == nil {
		return nil
	}
	var out []BlockCount
	for cf, slots := range p.counts {
		for bi, steps := range slots {
			if steps == 0 {
				continue
			}
			out = append(out, BlockCount{Fn: cf.fn.Name, Block: cf.blocks[bi].b.Name, Steps: steps})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Steps != out[j].Steps {
			return out[i].Steps > out[j].Steps
		}
		if out[i].Fn != out[j].Fn {
			return out[i].Fn < out[j].Fn
		}
		return out[i].Block < out[j].Block
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// String renders the full profile as the top-20 table.
func (p *BlockProfile) String() string { return p.Table(20) }

// Table renders the top-n hot blocks with each block's share of the run's
// total counted instructions.
func (p *BlockProfile) Table(n int) string {
	total := p.Total()
	rows := p.Top(n)
	var b strings.Builder
	fmt.Fprintf(&b, "hot blocks (%d of %d executed, %d instructions total)\n",
		len(rows), len(p.Top(0)), total)
	fmt.Fprintf(&b, "%-32s %14s %8s\n", "Block", "Instructions", "Share")
	for _, bc := range rows {
		share := 0.0
		if total > 0 {
			share = 100 * float64(bc.Steps) / float64(total)
		}
		fmt.Fprintf(&b, "%-32s %14d %7.2f%%\n", "@"+bc.Fn+":"+bc.Block, bc.Steps, share)
	}
	return b.String()
}
