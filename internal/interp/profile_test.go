package interp

import (
	"strings"
	"testing"

	"privanalyzer/internal/ir"
)

// loopModule is the 100-iteration counting loop with a known per-block step
// breakdown: entry 3, header 2×101, body 3×100, exit 1.
func loopModule() *ir.Module {
	b := ir.NewModuleBuilder("m")
	f := b.Func("main")
	f.Block("entry").Const("i", 0).Const("acc", 0).Jmp("header")
	f.Block("header").
		Cmp("c", ir.Lt, ir.R("i"), ir.I(100)).
		Br(ir.R("c"), "body", "exit")
	f.Block("body").
		Bin("acc", ir.Add, ir.R("acc"), ir.R("i")).
		Bin("i", ir.Add, ir.R("i"), ir.I(1)).
		Jmp("header")
	f.Block("exit").RetVal(ir.R("acc"))
	return b.MustBuild()
}

func TestBlockProfile(t *testing.T) {
	res, _ := run(t, loopModule(), 0, Options{Profile: true})
	p := res.Profile
	if p == nil {
		t.Fatal("Options.Profile set but Result.Profile is nil")
	}
	if p.Total() != res.Steps {
		t.Errorf("profile total %d != steps %d", p.Total(), res.Steps)
	}
	want := map[string]int64{"entry": 3, "header": 202, "body": 300, "exit": 1}
	for _, bc := range p.Top(0) {
		if bc.Fn != "main" {
			t.Errorf("unexpected function %q in profile", bc.Fn)
		}
		if bc.Steps != want[bc.Block] {
			t.Errorf("block %s: %d steps, want %d", bc.Block, bc.Steps, want[bc.Block])
		}
		delete(want, bc.Block)
	}
	for blk := range want {
		t.Errorf("block %s missing from profile", blk)
	}

	top := p.Top(2)
	if len(top) != 2 || top[0].Block != "body" || top[1].Block != "header" {
		t.Errorf("Top(2) = %v, want body then header", top)
	}
}

func TestBlockProfileTable(t *testing.T) {
	res, _ := run(t, loopModule(), 0, Options{Profile: true})
	out := res.Profile.Table(2)
	for _, want := range []string{
		"hot blocks (2 of 4 executed, 506 instructions total)",
		"@main:body", "@main:header", "59.29%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "@main:exit") {
		t.Errorf("Table(2) should truncate to the two hottest blocks:\n%s", out)
	}
}

func TestBlockProfileOffByDefault(t *testing.T) {
	res, _ := run(t, loopModule(), 0, Options{})
	if res.Profile != nil {
		t.Errorf("Result.Profile = %v without Options.Profile, want nil", res.Profile)
	}
}
