// Package callgraph builds the call graph AutoPriv's interprocedural
// analysis walks. Direct calls yield exact edges. Indirect calls are
// over-approximated the way the paper describes AutoPriv doing it (§VII-C):
// any address-taken function whose signature (arity) matches the call site is
// a possible target. This conservative treatment is what keeps sshd's
// privileges alive inside its client loop; the package also supports
// resolving indirect calls against an oracle so tests can quantify the
// imprecision.
package callgraph

import (
	"sort"

	"privanalyzer/internal/ir"
)

// Mode selects how indirect-call targets are resolved.
type Mode uint8

const (
	// TypeBased over-approximates an indirect call's targets as every
	// address-taken function with matching arity (AutoPriv's behaviour).
	TypeBased Mode = iota + 1
	// Oracle resolves indirect calls using the exact target sets supplied
	// in Options.IndirectTargets, modelling the "more accurate call graph
	// analysis" the paper suggests as future work.
	Oracle
)

// Options configures call-graph construction.
type Options struct {
	// Mode selects indirect-call resolution; the zero value means TypeBased.
	Mode Mode
	// IndirectTargets supplies, for Oracle mode, the exact callee names of
	// each indirect call site, keyed by the name of the function containing
	// the site. All indirect sites within one function share a target set,
	// which is sufficient for our program models.
	IndirectTargets map[string][]string
}

// Graph is a call graph over the functions of one module.
type Graph struct {
	// Module is the analysed module.
	Module *ir.Module

	callees map[string][]string // caller -> sorted unique callee names
	callers map[string][]string // callee -> sorted unique caller names
}

// Build constructs the call graph of m under the given options.
func Build(m *ir.Module, opts Options) *Graph {
	if opts.Mode == 0 {
		opts.Mode = TypeBased
	}
	g := &Graph{
		Module:  m,
		callees: make(map[string][]string, len(m.Funcs)),
		callers: make(map[string][]string, len(m.Funcs)),
	}

	addressTaken := addressTakenFuncs(m)

	edges := make(map[string]map[string]bool, len(m.Funcs))
	addEdge := func(from, to string) {
		if edges[from] == nil {
			edges[from] = make(map[string]bool)
		}
		edges[from][to] = true
	}

	for _, fn := range m.Funcs {
		for _, blk := range fn.Blocks {
			for _, in := range blk.Instrs {
				switch in := in.(type) {
				case *ir.CallInstr:
					addEdge(fn.Name, in.Callee)
				case *ir.CallIndInstr:
					for _, tgt := range indirectTargets(m, fn, in, opts, addressTaken) {
						addEdge(fn.Name, tgt)
					}
				}
			}
		}
	}

	// Registered signal handlers may run at any point in any function of the
	// program; model this as an edge from every function to each handler so
	// interprocedural privilege liveness keeps handler privileges alive.
	// (AutoPriv's dedicated signal-handler handling, paper §VII-C.)
	for _, handler := range m.SignalHandlers {
		for _, fn := range m.Funcs {
			if fn.Name != handler {
				addEdge(fn.Name, handler)
			}
		}
	}

	for from, tos := range edges {
		for to := range tos {
			g.callees[from] = append(g.callees[from], to)
			g.callers[to] = append(g.callers[to], from)
		}
	}
	for _, lists := range []map[string][]string{g.callees, g.callers} {
		for k := range lists {
			sort.Strings(lists[k])
		}
	}
	return g
}

// addressTakenFuncs returns the names of functions whose address appears as a
// FuncRef operand anywhere outside a direct call's callee position.
func addressTakenFuncs(m *ir.Module) map[string]bool {
	taken := make(map[string]bool)
	note := func(vals ...ir.Value) {
		for _, v := range vals {
			if v.Kind == ir.FuncRef {
				taken[v.Fn] = true
			}
		}
	}
	for _, fn := range m.Funcs {
		for _, blk := range fn.Blocks {
			for _, in := range blk.Instrs {
				switch in := in.(type) {
				case *ir.BinInstr:
					note(in.X, in.Y)
				case *ir.CmpInstr:
					note(in.X, in.Y)
				case *ir.CallInstr:
					note(in.Args...)
				case *ir.CallIndInstr:
					note(in.Fp)
					note(in.Args...)
				case *ir.SyscallInstr:
					note(in.Args...)
				case *ir.BrInstr:
					note(in.Cond)
				case *ir.RetInstr:
					note(in.Val)
				}
			}
		}
	}
	return taken
}

func indirectTargets(m *ir.Module, caller *ir.Function, in *ir.CallIndInstr, opts Options, addressTaken map[string]bool) []string {
	if opts.Mode == Oracle {
		return opts.IndirectTargets[caller.Name]
	}
	// If the pointer operand is a direct function reference the target is
	// exact even under the conservative mode.
	if in.Fp.Kind == ir.FuncRef {
		return []string{in.Fp.Fn}
	}
	var out []string
	for _, fn := range m.Funcs {
		if addressTaken[fn.Name] && len(fn.Params) == len(in.Args) {
			out = append(out, fn.Name)
		}
	}
	return out
}

// Callees returns the sorted possible callees of the named function.
func (g *Graph) Callees(name string) []string { return g.callees[name] }

// Callers returns the sorted possible callers of the named function.
func (g *Graph) Callers(name string) []string { return g.callers[name] }

// ReachableFrom returns the set of function names reachable from root
// (including root itself if it exists in the module).
func (g *Graph) ReachableFrom(root string) map[string]bool {
	seen := make(map[string]bool)
	if g.Module.Func(root) == nil {
		return seen
	}
	stack := []string{root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, g.callees[n]...)
	}
	return seen
}

// PostOrder returns the functions reachable from root in depth-first
// post-order (callees before callers where the graph is acyclic); cycles are
// broken at the first revisit. This is the order AutoPriv's bottom-up summary
// computation uses.
func (g *Graph) PostOrder(root string) []string {
	var order []string
	seen := make(map[string]bool)
	var walk func(n string)
	walk = func(n string) {
		if seen[n] || g.Module.Func(n) == nil {
			return
		}
		seen[n] = true
		for _, c := range g.callees[n] {
			walk(c)
		}
		order = append(order, n)
	}
	walk(root)
	return order
}
