package callgraph

import (
	"reflect"
	"testing"

	"privanalyzer/internal/ir"
)

// buildModule constructs:
//
//	main  --direct--> helperA
//	main  --indirect(1 arg)--> {helperA, helperB}  (both address-taken, arity 1)
//	helperC has arity 2, never a candidate
//	handler registered for signal 15
func buildModule(t *testing.T) *ir.Module {
	t.Helper()
	b := ir.NewModuleBuilder("m")
	b.OnSignal(15, "handler")

	f := b.Func("main")
	f.Block("entry").
		Call("helperA", ir.I(1)).
		Bin("fp", ir.Add, ir.F("helperA"), ir.I(0)).
		Bin("fp2", ir.Add, ir.F("helperB"), ir.I(0)).
		CallInd(ir.R("fp"), ir.I(2)).
		Ret()

	a := b.Func("helperA", "x")
	a.Block("entry").RetVal(ir.R("x"))
	hb := b.Func("helperB", "x")
	hb.Block("entry").Call("helperC", ir.R("x"), ir.I(0)).Ret()
	hc := b.Func("helperC", "x", "y")
	hc.Block("entry").Ret()
	hd := b.Func("handler")
	hd.Block("entry").Ret()

	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTypeBasedIndirectCalls(t *testing.T) {
	m := buildModule(t)
	g := Build(m, Options{})

	got := g.Callees("main")
	// Direct helperA, indirect {helperA, helperB} (arity 1, address taken),
	// plus the signal-handler edge.
	want := []string{"handler", "helperA", "helperB"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Callees(main) = %v, want %v", got, want)
	}
	// helperC has arity 2 and must not be an indirect target.
	for _, c := range got {
		if c == "helperC" {
			t.Error("helperC wrongly considered an indirect target")
		}
	}
}

func TestOracleIndirectCalls(t *testing.T) {
	m := buildModule(t)
	g := Build(m, Options{
		Mode:            Oracle,
		IndirectTargets: map[string][]string{"main": {"helperA"}},
	})
	got := g.Callees("main")
	want := []string{"handler", "helperA"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Callees(main) = %v, want %v", got, want)
	}
}

func TestDirectFuncRefIndirectCall(t *testing.T) {
	b := ir.NewModuleBuilder("m")
	f := b.Func("main")
	f.Block("entry").CallInd(ir.F("target"), ir.I(0)).Ret()
	tf := b.Func("target", "x")
	tf.Block("entry").Ret()
	other := b.Func("other", "x")
	other.Block("entry").Ret()
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := Build(m, Options{})
	got := g.Callees("main")
	want := []string{"target"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Callees(main) = %v, want %v (exact target through FuncRef)", got, want)
	}
}

func TestCallers(t *testing.T) {
	m := buildModule(t)
	g := Build(m, Options{})
	got := g.Callers("helperC")
	want := []string{"helperB"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Callers(helperC) = %v, want %v", got, want)
	}
}

func TestSignalHandlerEdges(t *testing.T) {
	m := buildModule(t)
	g := Build(m, Options{})
	// Every function (except the handler itself) gets an edge to the handler.
	for _, fn := range []string{"main", "helperA", "helperB", "helperC"} {
		found := false
		for _, c := range g.Callees(fn) {
			if c == "handler" {
				found = true
			}
		}
		if !found {
			t.Errorf("missing signal-handler edge from %s", fn)
		}
	}
	for _, c := range g.Callees("handler") {
		if c == "handler" {
			t.Error("handler should not call itself via the signal edge")
		}
	}
}

func TestReachableFrom(t *testing.T) {
	m := buildModule(t)
	g := Build(m, Options{})
	reach := g.ReachableFrom("main")
	for _, name := range []string{"main", "helperA", "helperB", "helperC", "handler"} {
		if !reach[name] {
			t.Errorf("%s not reachable from main", name)
		}
	}
	if reach["ghost"] {
		t.Error("nonexistent function reachable")
	}
	if r := g.ReachableFrom("nonexistent"); len(r) != 0 {
		t.Errorf("ReachableFrom(nonexistent) = %v", r)
	}
}

func TestPostOrder(t *testing.T) {
	m := buildModule(t)
	g := Build(m, Options{})
	order := g.PostOrder("main")
	pos := make(map[string]int, len(order))
	for i, n := range order {
		pos[n] = i
	}
	if len(order) != 5 {
		t.Fatalf("PostOrder = %v", order)
	}
	if pos["main"] != len(order)-1 {
		t.Errorf("main should be last in post-order: %v", order)
	}
	if pos["helperC"] > pos["helperB"] {
		t.Errorf("callee helperC should precede caller helperB: %v", order)
	}
}

func TestRecursionDoesNotLoopForever(t *testing.T) {
	b := ir.NewModuleBuilder("m")
	f := b.Func("main")
	f.Block("entry").Call("main").Ret()
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g := Build(m, Options{})
	if order := g.PostOrder("main"); len(order) != 1 || order[0] != "main" {
		t.Errorf("PostOrder = %v", order)
	}
	if !g.ReachableFrom("main")["main"] {
		t.Error("main unreachable from itself")
	}
}
