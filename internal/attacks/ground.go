package attacks

import (
	"privanalyzer/internal/rewrite"
	"privanalyzer/internal/rosa"
)

// Ground returns a copy of the query with every wildcard message argument
// pre-expanded into one concrete message per candidate value, instead of the
// lazy at-match-time expansion ROSA's rules perform. This is the design
// ablation DESIGN.md calls out: pre-grounding multiplies the message soup
// (and with it the subset lattice the search walks) by the product of the
// candidate counts, and it is also semantically looser — the attacker gets
// an independent single-use message per grounding rather than one choice —
// so the benchmark reports its state blow-up rather than its verdicts.
func Ground(q *rosa.Query) *rosa.Query {
	users := make([]int64, 0, len(DefaultUsers()))
	for _, u := range DefaultUsers() {
		users = append(users, int64(u))
	}
	groups := make([]int64, 0, len(DefaultGroups()))
	for _, g := range DefaultGroups() {
		groups = append(groups, int64(g))
	}
	var fileIDs []int64
	var procIDs []int64
	for _, o := range q.Objects {
		if o.Kind != rewrite.Op || len(o.Args) == 0 || !o.Args[0].IsInt() {
			continue
		}
		switch o.Sym {
		case "File", "Dir":
			fileIDs = append(fileIDs, o.Args[0].IntVal)
		case "Process":
			procIDs = append(procIDs, o.Args[0].IntVal)
		}
	}

	// candidatesFor maps a wildcard position of a syscall message to its
	// candidate values. Position 0 is the pid (never wildcarded here); the
	// final position is the privilege set.
	candidatesFor := func(sym string, pos int) []int64 {
		switch sym {
		case "open", "chmod", "fchmod", "unlink", "rename":
			if pos == 1 {
				return fileIDs
			}
		case "chown", "fchown":
			switch pos {
			case 1:
				return fileIDs
			case 2:
				return users
			case 3:
				return groups
			}
		case "setuid", "seteuid":
			if pos == 1 {
				return users
			}
		case "setresuid":
			if pos >= 1 && pos <= 3 {
				return users
			}
		case "setgid", "setegid":
			if pos == 1 {
				return groups
			}
		case "setresgid":
			if pos >= 1 && pos <= 3 {
				return groups
			}
		case "kill":
			if pos == 1 {
				return procIDs
			}
		}
		return nil
	}

	out := &rosa.Query{
		Objects:  q.Objects,
		Goal:     q.Goal,
		Options:  q.Options,
		Extended: q.Extended,
	}
	for _, msg := range q.Messages {
		grounded := []*rewrite.Term{msg}
		for pos := 1; pos < len(msg.Args)-1; pos++ {
			var next []*rewrite.Term
			for _, m := range grounded {
				if !m.Args[pos].IsInt() || m.Args[pos].IntVal != rosa.Wild {
					next = append(next, m)
					continue
				}
				cands := candidatesFor(m.Sym, pos)
				if len(cands) == 0 {
					next = append(next, m)
					continue
				}
				for _, c := range cands {
					args := append([]*rewrite.Term(nil), m.Args...)
					args[pos] = rewrite.NewInt(c)
					next = append(next, rewrite.NewOp(m.Sym, args...))
				}
			}
			grounded = next
		}
		out.Messages = append(out.Messages, grounded...)
	}
	return out
}
