// Package attacks builds the four privilege-escalation attack queries of
// the paper's Table I as ROSA inputs. Each attack is parameterised by the
// program's syscall inventory (the attack model only lets an attacker use
// system calls the program itself uses, §III), the process credentials, and
// the permitted privilege set of the measurement phase under analysis —
// every syscall message carries the entire permitted set, modelling an
// attacker who can raise any permitted privilege with any call (§VII-A).
//
// Following §VIII, each attack's input contains only the system calls
// relevant to it: file-access calls for the /dev/mem attacks, socket calls
// for the privileged-port attack, and signal/credential calls for the
// SIGKILL attack. This is what makes attacks 3 and 4 searches small and the
// /dev/mem searches large, reproducing the paper's performance shape.
package attacks

import (
	"fmt"

	"privanalyzer/internal/caps"
	"privanalyzer/internal/rewrite"
	"privanalyzer/internal/rosa"
	"privanalyzer/internal/vkernel"
)

// ID identifies one modeled attack.
type ID uint8

// The four attacks of Table I.
const (
	// ReadDevMem: read from /dev/mem to steal application data.
	ReadDevMem ID = 1
	// WriteDevMem: write to /dev/mem to corrupt application data.
	WriteDevMem ID = 2
	// BindPrivPort: bind to a privileged port to masquerade as a server.
	BindPrivPort ID = 3
	// KillServer: send SIGKILL to kill the sshd server.
	KillServer ID = 4
)

// All lists the four attacks in table order.
var All = []ID{ReadDevMem, WriteDevMem, BindPrivPort, KillServer}

// Description returns the Table I description of the attack.
func (id ID) Description() string {
	switch id {
	case ReadDevMem:
		return "Read from /dev/mem to steal application data"
	case WriteDevMem:
		return "Write to /dev/mem to corrupt application data"
	case BindPrivPort:
		return "Bind to a privileged port to masquerade as a server"
	case KillServer:
		return "Send a SIGKILL signal to kill the sshd server"
	default:
		return fmt.Sprintf("attack %d", id)
	}
}

// String renders the attack number.
func (id ID) String() string { return fmt.Sprintf("attack%d", id) }

// Well-known object IDs in the attack environment.
const (
	// AttackerPID is the process under analysis.
	AttackerPID = 1
	// DevDirID is the /dev directory entry object.
	DevDirID = 2
	// DevMemID is the /dev/mem file object.
	DevMemID = 3
	// VictimPID is the sshd server process targeted by attack 4.
	VictimPID = 4
	// SocketID is the socket the attacker may create in attack 3.
	SocketID = 10
)

// Environment constants: the special users and groups of the evaluation
// system (§VII-B and DESIGN.md's calibration note). /dev/mem is owned by a
// dedicated device-owner uid with group kmem, so that neither uid 0 nor the
// ordinary users can pass its DAC check without a capability.
const (
	// DevOwnerUID owns /dev/mem (the "mem" special user).
	DevOwnerUID = 2
	// KmemGID is the kmem group that may read /dev/mem.
	KmemGID = 9
	// ShadowGID is the shadow group of the password database.
	ShadowGID = 42
	// SshdUID is the daemon uid of the victim sshd server.
	SshdUID = 106
	// EtcUID is the special "etc" user the refactored programs introduce
	// (§VII-D1).
	EtcUID = 998
	// UserUID is the invoking user of the evaluation runs.
	UserUID = 1000
	// OtherUID is the second regular user (su's target, scp's peer).
	OtherUID = 1001
)

// DefaultUsers are the User objects supplied to ROSA: wildcard uid
// arguments range over them (§V-B).
func DefaultUsers() []int { return []int{0, DevOwnerUID, SshdUID, EtcUID, UserUID, OtherUID} }

// DefaultGroups are the Group objects supplied to ROSA.
func DefaultGroups() []int { return []int{0, KmemGID, ShadowGID, UserUID, OtherUID} }

// relevant lists, per attack, the modeled system calls that can contribute
// to it (§VIII: "fewer system calls are relevant to attacks 3 and 4").
var relevant = map[ID]map[string]bool{
	ReadDevMem: {
		"open": true, "chmod": true, "fchmod": true, "chown": true, "fchown": true,
		"unlink": true, "rename": true,
		"setuid": true, "seteuid": true, "setresuid": true,
		"setgid": true, "setegid": true, "setresgid": true,
	},
	WriteDevMem: {
		"open": true, "chmod": true, "fchmod": true, "chown": true, "fchown": true,
		"unlink": true, "rename": true,
		"setuid": true, "seteuid": true, "setresuid": true,
		"setgid": true, "setegid": true, "setresgid": true,
	},
	BindPrivPort: {
		"socket": true, "bind": true, "connect": true,
	},
	KillServer: {
		"kill":   true,
		"setuid": true, "seteuid": true, "setresuid": true,
		"setgid": true, "setegid": true, "setresgid": true,
	},
}

// Build constructs the ROSA query for one attack against a program phase:
// syscalls is the program's syscall inventory, creds the phase's process
// credentials, and privs the phase's permitted privilege set. Every message
// carries privs and fully wildcarded arguments.
func Build(id ID, syscalls []string, creds rosa.Creds, privs caps.Set) *rosa.Query {
	objs := []*rewrite.Term{
		rosa.Process(AttackerPID, creds, nil, nil),
		rosa.DirEntry(DevDirID, "/dev", vkernel.MustMode("rwxr-xr-x"), 0, 0, DevMemID),
		rosa.File(DevMemID, "/dev/mem", vkernel.MustMode("rw-r-----"), DevOwnerUID, KmemGID),
	}
	if id == KillServer {
		objs = append(objs, rosa.Process(VictimPID, rosa.UniformCreds(SshdUID, SshdUID), nil, nil))
	}
	for _, u := range DefaultUsers() {
		objs = append(objs, rosa.User(u))
	}
	for _, g := range DefaultGroups() {
		objs = append(objs, rosa.GroupObj(g))
	}

	var msgs []*rewrite.Term
	for _, sc := range syscalls {
		if !relevant[id][sc] {
			continue
		}
		if m := message(id, sc, privs); m != nil {
			msgs = append(msgs, m)
		}
	}

	var goal rewrite.Goal
	switch id {
	case ReadDevMem:
		goal = rosa.GoalFileInReadSet(DevMemID)
	case WriteDevMem:
		goal = rosa.GoalFileInWriteSet(DevMemID)
	case BindPrivPort:
		goal = rosa.GoalPortBoundBelow(1024)
	case KillServer:
		goal = rosa.GoalProcessTerminated(VictimPID)
	}

	return &rosa.Query{Objects: objs, Messages: msgs, Goal: goal}
}

// message builds the fully-wildcarded single-use message for one syscall.
func message(id ID, sc string, privs caps.Set) *rewrite.Term {
	const pid = AttackerPID
	allPerms := vkernel.MustMode("rwxrwxrwx")
	switch sc {
	case "open":
		mode := rosa.OpenRead
		if id == WriteDevMem {
			mode = rosa.OpenWrite
		}
		return rosa.OpenMsg(pid, rosa.Wild, mode, privs)
	case "chmod":
		// An attacker turns on all permission bits; the arguments to
		// chmod do not affect which privileges it needs (§V-B).
		return rosa.ChmodMsg(pid, rosa.Wild, allPerms, privs)
	case "fchmod":
		return rosa.FchmodMsg(pid, rosa.Wild, allPerms, privs)
	case "chown":
		return rosa.ChownMsg(pid, rosa.Wild, rosa.Wild, rosa.Wild, privs)
	case "fchown":
		return rosa.FchownMsg(pid, rosa.Wild, rosa.Wild, rosa.Wild, privs)
	case "unlink":
		return rosa.UnlinkMsg(pid, rosa.Wild, privs)
	case "rename":
		return rosa.RenameMsg(pid, rosa.Wild, DevMemID, privs)
	case "setuid":
		return rosa.SetuidMsg(pid, rosa.Wild, privs)
	case "seteuid":
		return rosa.SeteuidMsg(pid, rosa.Wild, privs)
	case "setresuid":
		return rosa.SetresuidMsg(pid, rosa.Wild, rosa.Wild, rosa.Wild, privs)
	case "setgid":
		return rosa.SetgidMsg(pid, rosa.Wild, privs)
	case "setegid":
		return rosa.SetegidMsg(pid, rosa.Wild, privs)
	case "setresgid":
		return rosa.SetresgidMsg(pid, rosa.Wild, rosa.Wild, rosa.Wild, privs)
	case "kill":
		return rosa.KillMsg(pid, rosa.Wild, 9, privs)
	case "socket":
		return rosa.SocketMsg(pid, SocketID, privs)
	case "bind":
		return rosa.BindMsg(pid, SocketID, 22, privs)
	case "connect":
		return rosa.ConnectMsg(pid, SocketID, 22, privs)
	default:
		return nil
	}
}

// BuildCapsicum builds the attack query for a program that has entered
// Capsicum capability mode (§X future work: comparing privilege models).
// The attacker holds the same privileges and syscall inventory, but every
// global-namespace syscall is denied by capability mode; only
// descriptor-based operations remain.
func BuildCapsicum(id ID, syscalls []string, creds rosa.Creds, privs caps.Set) *rosa.Query {
	q := Build(id, syscalls, creds, privs)
	q.Objects = append(q.Objects, rosa.CapModeObj(AttackerPID))
	q.Extended = true
	return q
}

// BuildSequenced builds the attack query for a CFI-weakened attacker (§X
// future work: modeling defenses): the syscalls fire as a subsequence of
// the given program order, with arguments still attacker-controlled. The
// syscalls slice must be in the program's dynamic call order.
func BuildSequenced(id ID, syscalls []string, creds rosa.Creds, privs caps.Set) *rosa.Query {
	q := Build(id, nil, creds, privs)
	q.Objects = append(q.Objects, rosa.Fence(0))
	n := 0
	for _, sc := range syscalls {
		if !relevant[id][sc] {
			continue
		}
		if m := message(id, sc, privs); m != nil {
			q.Messages = append(q.Messages, rosa.SeqMsg(n, m))
			n++
		}
	}
	q.Extended = true
	return q
}
