package attacks

import (
	"math/rand"
	"testing"

	"privanalyzer/internal/caps"
	"privanalyzer/internal/rosa"
)

// relevantCaps are the capabilities that can influence the modeled attacks;
// random subsets are drawn from these so the property tests explore
// meaningful space.
var relevantCaps = []caps.Cap{
	caps.CapChown, caps.CapDacOverride, caps.CapDacReadSearch, caps.CapFowner,
	caps.CapKill, caps.CapSetgid, caps.CapSetuid, caps.CapNetBindService,
}

func randomSet(r *rand.Rand) caps.Set {
	var s caps.Set
	for _, c := range relevantCaps {
		if r.Intn(2) == 1 {
			s = s.Add(c)
		}
	}
	return s
}

// boundedRun executes a query with a test-sized state budget; Unknown
// verdicts make a trial inconclusive rather than slow.
func boundedRun(t *testing.T, q *rosa.Query) *rosa.Result {
	t.Helper()
	q.MaxStates = 30_000
	res, err := q.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func randomCreds(r *rand.Rand) rosa.Creds {
	uids := []int{0, 2, 106, 998, 1000, 1001}
	pick := func() int { return uids[r.Intn(len(uids))] }
	return rosa.Creds{
		RUID: pick(), EUID: pick(), SUID: pick(),
		RGID: pick(), EGID: pick(), SGID: pick(),
	}
}

// TestPrivilegeMonotonicity: adding a capability to the attacker's set can
// never turn a vulnerable configuration safe. This is the core soundness
// property of the attack model: privileges only add power.
func TestPrivilegeMonotonicity(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	inv := []string{"open", "chown", "setuid", "setresuid", "setgid", "kill", "socket", "bind"}
	const trials = 40
	for i := 0; i < trials; i++ {
		id := All[r.Intn(len(All))]
		creds := randomCreds(r)
		base := randomSet(r)
		extra := base.Add(relevantCaps[r.Intn(len(relevantCaps))])

		rb := boundedRun(t, Build(id, inv, creds, base))
		if rb.Verdict != rosa.Vulnerable {
			continue
		}
		re := boundedRun(t, Build(id, inv, creds, extra))
		if re.Verdict != rosa.Vulnerable && re.Verdict != rosa.Unknown {
			t.Errorf("trial %d: %s with %s vulnerable but with superset %s = %s",
				i, id, base, extra, re.Verdict)
		}
	}
}

// TestSyscallMonotonicity: a larger syscall inventory can never turn a
// vulnerable configuration safe.
func TestSyscallMonotonicity(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	full := []string{"open", "chown", "chmod", "setuid", "seteuid", "setresuid", "setgid", "setegid", "setresgid", "kill", "socket", "bind", "connect", "unlink", "rename"}
	const trials = 25
	for i := 0; i < trials; i++ {
		id := All[r.Intn(len(All))]
		creds := randomCreds(r)
		privs := randomSet(r)
		// Random subset of the inventory.
		var sub []string
		for _, s := range full {
			if r.Intn(2) == 1 {
				sub = append(sub, s)
			}
		}
		rs := boundedRun(t, Build(id, sub, creds, privs))
		if rs.Verdict != rosa.Vulnerable {
			continue
		}
		rf := boundedRun(t, Build(id, full, creds, privs))
		if rf.Verdict != rosa.Vulnerable && rf.Verdict != rosa.Unknown {
			t.Errorf("trial %d: %s vulnerable with inventory %v but safe with full inventory", i, id, sub)
		}
	}
}

// TestVerdictDeterminism: the search is fully deterministic — same query,
// same verdict, same states explored, same witness length.
func TestVerdictDeterminism(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	inv := []string{"open", "chown", "setuid", "setgid", "kill"}
	for i := 0; i < 10; i++ {
		id := All[r.Intn(len(All))]
		creds := randomCreds(r)
		privs := randomSet(r)
		a := boundedRun(t, Build(id, inv, creds, privs))
		b := boundedRun(t, Build(id, inv, creds, privs))
		if a.Verdict != b.Verdict || a.StatesExplored != b.StatesExplored || len(a.Witness) != len(b.Witness) {
			t.Errorf("nondeterministic: %s/%d/%d vs %s/%d/%d",
				a.Verdict, a.StatesExplored, len(a.Witness),
				b.Verdict, b.StatesExplored, len(b.Witness))
		}
	}
}

// TestCapsicumDominatesLinux: for every configuration, the Capsicum verdict
// is at least as safe as the Linux verdict — capability mode only removes
// attacker options.
func TestCapsicumDominatesLinux(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	inv := []string{"open", "chown", "setuid", "setgid", "kill", "socket", "bind"}
	for i := 0; i < 20; i++ {
		id := All[r.Intn(len(All))]
		creds := randomCreds(r)
		privs := randomSet(r)
		lc := boundedRun(t, BuildCapsicum(id, inv, creds, privs))
		if lc.Verdict == rosa.Vulnerable {
			ll := boundedRun(t, Build(id, inv, creds, privs))
			if ll.Verdict != rosa.Vulnerable && ll.Verdict != rosa.Unknown {
				t.Errorf("trial %d: capsicum vulnerable but plain linux %s", i, ll.Verdict)
			}
		}
	}
}
