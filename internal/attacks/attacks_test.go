package attacks

import (
	"strings"
	"testing"

	"privanalyzer/internal/caps"
	"privanalyzer/internal/rosa"
)

// verdict runs one attack and returns the ROSA verdict.
func verdict(t *testing.T, id ID, syscalls []string, creds rosa.Creds, privs caps.Set) rosa.Verdict {
	t.Helper()
	q := Build(id, syscalls, creds, privs)
	res, err := q.Run()
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	return res.Verdict
}

func TestDescriptions(t *testing.T) {
	for _, id := range All {
		if d := id.Description(); d == "" || strings.HasPrefix(d, "attack") {
			t.Errorf("%s description = %q", id, d)
		}
	}
	if ID(9).Description() != "attack 9" {
		t.Error("unknown attack description")
	}
}

func TestRelevanceFilter(t *testing.T) {
	inv := []string{"open", "chown", "socket", "bind", "connect", "kill", "setuid"}
	q1 := Build(ReadDevMem, inv, rosa.UniformCreds(1000, 1000), caps.EmptySet)
	for _, m := range q1.Messages {
		if m.Sym == "socket" || m.Sym == "bind" || m.Sym == "kill" {
			t.Errorf("attack 1 config contains irrelevant syscall %s", m.Sym)
		}
	}
	q3 := Build(BindPrivPort, inv, rosa.UniformCreds(1000, 1000), caps.EmptySet)
	if len(q3.Messages) != 3 {
		t.Errorf("attack 3 messages = %d, want 3 (socket, bind, connect)", len(q3.Messages))
	}
	q4 := Build(KillServer, inv, rosa.UniformCreds(1000, 1000), caps.EmptySet)
	for _, m := range q4.Messages {
		if m.Sym == "open" || m.Sym == "chown" {
			t.Errorf("attack 4 config contains irrelevant syscall %s", m.Sym)
		}
	}
}

func TestVictimOnlyInAttack4(t *testing.T) {
	inv := []string{"kill", "setuid"}
	q4 := Build(KillServer, inv, rosa.UniformCreds(1000, 1000), caps.EmptySet)
	q1 := Build(ReadDevMem, inv, rosa.UniformCreds(1000, 1000), caps.EmptySet)
	count := func(q *rosa.Query) int {
		n := 0
		for _, o := range q.Objects {
			if o.Sym == "Process" {
				n++
			}
		}
		return n
	}
	if count(q4) != 2 {
		t.Errorf("attack 4 processes = %d, want 2", count(q4))
	}
	if count(q1) != 1 {
		t.Errorf("attack 1 processes = %d, want 1", count(q1))
	}
}

// The canonical capability → attack outcomes from the calibration analysis
// in DESIGN.md, spot-checking one representative per mechanism.
func TestAttackOutcomesByCapability(t *testing.T) {
	fileSyscalls := []string{"open", "chown", "setuid", "seteuid", "setresuid", "setgid", "setegid", "setresgid", "unlink", "rename"}
	user := rosa.UniformCreds(UserUID, UserUID)
	root := rosa.UniformCreds(0, 0)

	tests := []struct {
		name  string
		id    ID
		inv   []string
		creds rosa.Creds
		privs caps.Set
		want  rosa.Verdict
	}{
		{"dac_read_search reads", ReadDevMem, fileSyscalls, user, caps.NewSet(caps.CapDacReadSearch), rosa.Vulnerable},
		{"dac_read_search cannot write", WriteDevMem, fileSyscalls, user, caps.NewSet(caps.CapDacReadSearch), rosa.Safe},
		{"dac_override writes", WriteDevMem, fileSyscalls, user, caps.NewSet(caps.CapDacOverride), rosa.Vulnerable},
		{"setuid becomes owner", WriteDevMem, fileSyscalls, user, caps.NewSet(caps.CapSetuid), rosa.Vulnerable},
		{"setgid joins kmem reads", ReadDevMem, fileSyscalls, user, caps.NewSet(caps.CapSetgid), rosa.Vulnerable},
		{"setgid cannot write", WriteDevMem, fileSyscalls, user, caps.NewSet(caps.CapSetgid), rosa.Safe},
		{"chown takes ownership", WriteDevMem, fileSyscalls, user, caps.NewSet(caps.CapChown), rosa.Vulnerable},
		{"uid0 empty set denied", ReadDevMem, fileSyscalls, root, caps.EmptySet, rosa.Safe},
		{"user empty set denied", WriteDevMem, fileSyscalls, user, caps.EmptySet, rosa.Safe},
		{"fowner alone insufficient", ReadDevMem, fileSyscalls, user, caps.NewSet(caps.CapFowner), rosa.Safe},
		{"bind with cap", BindPrivPort, []string{"socket", "bind", "connect"}, user, caps.NewSet(caps.CapNetBindService), rosa.Vulnerable},
		{"bind without cap", BindPrivPort, []string{"socket", "bind", "connect"}, user, caps.FullSet().Drop(caps.CapNetBindService), rosa.Safe},
		{"bind without socket syscalls", BindPrivPort, fileSyscalls, user, caps.FullSet(), rosa.Safe},
		{"kill with cap_kill", KillServer, []string{"kill"}, user, caps.NewSet(caps.CapKill), rosa.Vulnerable},
		{"kill via setuid", KillServer, []string{"kill", "setuid"}, user, caps.NewSet(caps.CapSetuid), rosa.Vulnerable},
		{"kill denied", KillServer, []string{"kill", "setgid"}, user, caps.NewSet(caps.CapSetgid), rosa.Safe},
		{"kill without kill syscall", KillServer, []string{"setuid"}, user, caps.FullSet(), rosa.Safe},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := verdict(t, tt.id, tt.inv, tt.creds, tt.privs); got != tt.want {
				t.Errorf("verdict = %s, want %s", got, tt.want)
			}
		})
	}
}

func TestRefactoredTrick(t *testing.T) {
	// §VII-D: with the saved uid pre-set to a target user and no privileges
	// at all, an attacker can swap the effective uid among {r,e,s} — but
	// none of those own /dev/mem, so the attack still fails. The etc-user
	// design keeps /dev/mem out of reach.
	creds := rosa.Creds{
		RUID: UserUID, EUID: EtcUID, SUID: OtherUID,
		RGID: UserUID, EGID: EtcUID, SGID: OtherUID,
	}
	inv := []string{"open", "setresuid", "setresgid"}
	if got := verdict(t, ReadDevMem, inv, creds, caps.EmptySet); got != rosa.Safe {
		t.Errorf("verdict = %s, want ✗", got)
	}
}

func TestAttack1SlowerThanAttack4(t *testing.T) {
	// §VIII: the /dev/mem attacks involve more relevant syscalls and
	// UID/GID combinations than the signal attack, giving ROSA a larger
	// space. Compare explored states on a failing configuration.
	inv := []string{"open", "chown", "setuid", "setresuid", "setgid", "setresgid", "kill"}
	creds := rosa.UniformCreds(UserUID, UserUID)
	privs := caps.EmptySet // both attacks must fail so both searches exhaust
	q1 := Build(ReadDevMem, inv, creds, privs)
	r1, err := q1.Run()
	if err != nil {
		t.Fatal(err)
	}
	q4 := Build(KillServer, inv, creds, privs)
	r4, err := q4.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Verdict != rosa.Safe || r4.Verdict != rosa.Safe {
		t.Fatalf("verdicts = %s/%s, want ✗/✗", r1.Verdict, r4.Verdict)
	}
	if r1.StatesExplored <= r4.StatesExplored {
		t.Errorf("attack1 explored %d, attack4 %d; want attack1 > attack4",
			r1.StatesExplored, r4.StatesExplored)
	}
}

func TestGroundExpandsWildcards(t *testing.T) {
	inv := []string{"setuid", "open"}
	q := Build(ReadDevMem, inv, rosa.UniformCreds(UserUID, UserUID), caps.NewSet(caps.CapSetuid))
	g := Ground(q)
	// setuid(wild) expands to one message per user; open(wild) to one per
	// file/dir object (the /dev entry and /dev/mem).
	want := len(DefaultUsers()) + 2
	if len(g.Messages) != want {
		t.Fatalf("grounded messages = %d, want %d", len(g.Messages), want)
	}
	for _, m := range g.Messages {
		for _, a := range m.Args {
			if a.IsInt() && a.IntVal == rosa.Wild {
				t.Errorf("wildcard survived grounding in %s", m)
			}
		}
	}
	// The grounded query still finds the attack.
	res, err := g.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != rosa.Vulnerable {
		t.Errorf("grounded verdict = %s, want ✓", res.Verdict)
	}
}

func TestBuildCapsicum(t *testing.T) {
	inv := []string{"open", "chown", "setuid", "setgid", "kill", "socket", "bind", "connect"}
	creds := rosa.UniformCreds(UserUID, UserUID)
	// Under Linux capabilities alone, the full set leaves every attack open;
	// in Capsicum capability mode, all four are closed — the §X comparison.
	for _, id := range All {
		plain := Build(id, inv, creds, caps.FullSet())
		capm := BuildCapsicum(id, inv, creds, caps.FullSet())
		rp, err := plain.Run()
		if err != nil {
			t.Fatal(err)
		}
		rc, err := capm.Run()
		if err != nil {
			t.Fatal(err)
		}
		if rp.Verdict != rosa.Vulnerable {
			t.Errorf("%s plain verdict = %s, want ✓", id, rp.Verdict)
		}
		if rc.Verdict != rosa.Safe {
			t.Errorf("%s capsicum verdict = %s, want ✗", id, rc.Verdict)
		}
	}
}

func TestBuildSequenced(t *testing.T) {
	creds := rosa.UniformCreds(UserUID, UserUID)
	privs := caps.NewSet(caps.CapSetuid)
	// Program order: the only open precedes the only setuid, so the
	// CFI-weakened attacker cannot first become the /dev/mem owner.
	seq := BuildSequenced(ReadDevMem, []string{"open", "setuid"}, creds, privs)
	res, err := seq.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != rosa.Safe {
		t.Errorf("sequenced open-then-setuid = %s, want ✗", res.Verdict)
	}
	// The unconstrained attacker reorders and wins.
	free := Build(ReadDevMem, []string{"open", "setuid"}, creds, privs)
	rf, err := free.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rf.Verdict != rosa.Vulnerable {
		t.Errorf("free attacker = %s, want ✓", rf.Verdict)
	}
	// With the program order reversed, CFI no longer helps.
	seq2 := BuildSequenced(ReadDevMem, []string{"setuid", "open"}, creds, privs)
	r2, err := seq2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if r2.Verdict != rosa.Vulnerable {
		t.Errorf("sequenced setuid-then-open = %s, want ✓", r2.Verdict)
	}
}
