// Defense comparison: the paper's future-work section (§X) proposes using
// PrivAnalyzer to compare privilege models and to model weakened attackers.
// This example does both for the su program's measurement phases:
//
//   - Linux capabilities (the paper's baseline attack model),
//   - Capsicum capability mode (FreeBSD): the process entered capability
//     mode, cutting off all global namespaces,
//   - a CFI-constrained attacker: system calls fire only as a subsequence of
//     su's own dynamic call order (arguments remain attacker-controlled).
//
// Run with: go run ./examples/defense_comparison
package main

import (
	"fmt"
	"log"

	"privanalyzer/internal/attacks"
	"privanalyzer/internal/programs"
	"privanalyzer/internal/rosa"
)

func main() {
	p, err := programs.Su()
	if err != nil {
		log.Fatal(err)
	}
	inventory := p.Syscalls()
	// su's dynamic call order for the CFI model: authentication reads the
	// shadow file first; the credential switches come last (§VII-C).
	programOrder := []string{"open", "setegid", "setgid", "setuid", "kill"}

	fmt.Printf("program: %s (%s)\n", p.Name, p.Workload)
	fmt.Println("verdicts per phase for attack 1 (read /dev/mem):")
	fmt.Printf("%-12s %-40s %8s %10s %6s\n", "phase", "privileges", "linux", "capsicum", "cfi")
	for _, ph := range p.Phases {
		creds := rosa.Creds{
			RUID: ph.UID[0], EUID: ph.UID[1], SUID: ph.UID[2],
			RGID: ph.GID[0], EGID: ph.GID[1], SGID: ph.GID[2],
		}
		linux, err := attacks.Build(attacks.ReadDevMem, inventory, creds, ph.Privs).Run()
		if err != nil {
			log.Fatal(err)
		}
		capsicum, err := attacks.BuildCapsicum(attacks.ReadDevMem, inventory, creds, ph.Privs).Run()
		if err != nil {
			log.Fatal(err)
		}
		cfi, err := attacks.BuildSequenced(attacks.ReadDevMem, programOrder, creds, ph.Privs).Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %-40s %8s %10s %6s\n",
			ph.Name, ph.Privs, linux.Verdict, capsicum.Verdict, cfi.Verdict)
	}

	fmt.Println()
	fmt.Println("reading the table:")
	fmt.Println(" - linux: the paper's Table III column — su is exposed whenever")
	fmt.Println("   CAP_DAC_READ_SEARCH or CAP_SETUID remains in the permitted set;")
	fmt.Println(" - capsicum: once in capability mode the path namespace is gone, so")
	fmt.Println("   even the full privilege set cannot reopen /dev/mem — the stronger")
	fmt.Println("   containment §X hypothesises;")
	fmt.Println(" - cfi: ordering alone already blocks the setuid-then-open chain in")
	fmt.Println("   phases where only CAP_SETUID is left, because su's own open")
	fmt.Println("   happens before its credential switches.")
}
