// Quickstart: analyse a small privileged program end-to-end.
//
// The program below mimics a log-rotation daemon: it needs CAP_CHOWN once at
// startup to hand its log file to an unprivileged user, then serves forever.
// We build its IR with privilege annotations, let AutoPriv insert the
// priv_remove, execute it under ChronoPriv to see how long each privilege
// set is live, and ask ROSA whether the write-/dev/mem attack is possible in
// each phase.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"privanalyzer/internal/attacks"
	"privanalyzer/internal/autopriv"
	"privanalyzer/internal/caps"
	"privanalyzer/internal/chronopriv"
	"privanalyzer/internal/interp"
	"privanalyzer/internal/ir"
	"privanalyzer/internal/rosa"
	"privanalyzer/internal/vkernel"
)

func main() {
	// 1. Build a privilege-annotated program: raise CAP_CHOWN around the
	// one call that needs it, then do unprivileged work.
	chown := caps.NewSet(caps.CapChown)
	b := ir.NewModuleBuilder("logrotated")
	f := b.Func("main")
	f.Block("entry").
		Raise(chown).
		Syscall("chown", ir.S("/var/log/app.log"), ir.I(1000), ir.I(1000)).
		Lower(chown).
		Jmp("serve")
	f.Block("serve").
		SyscallTo("fd", "open", ir.S("/var/log/app.log"), ir.I(vkernel.OpenWrite)).
		Syscall("write", ir.R("fd"), ir.I(4096)).
		Compute(500). // the daemon's steady-state work
		Ret()
	module := b.MustBuild()

	// 2. AutoPriv: find where CAP_CHOWN becomes dead and drop it there.
	analysis, err := autopriv.Analyze(module, autopriv.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AutoPriv: program needs initial permitted set %s\n", analysis.RequiredPermitted)
	for _, r := range analysis.Removals {
		fmt.Printf("AutoPriv: inserted priv_remove(%s) at @%s:%s[%d]\n", r.Caps, r.Func, r.Block, r.Index)
	}

	// 3. ChronoPriv: run the transformed program and measure how many
	// instructions execute under each permitted set.
	kernel := vkernel.New()
	kernel.AddFile(vkernel.File{
		Path: "/var/log", Owner: 0, Group: 0,
		Perms: vkernel.MustMode("rwxr-xr-x"), IsDir: true,
	})
	kernel.AddFile(vkernel.File{
		Path: "/var/log/app.log", Owner: 0, Group: 0,
		Perms: vkernel.MustMode("rw-rw-r--"),
	})
	kernel.Spawn("logrotated", caps.NewCreds(1000, 1000, analysis.RequiredPermitted))
	runtime := chronopriv.NewRuntime(kernel)
	if _, err := interp.Run(analysis.Module, kernel, interp.Options{OnStep: runtime.OnStep}); err != nil {
		log.Fatal(err)
	}
	report := runtime.Report("logrotated")
	fmt.Printf("\n%s\n", report)

	// 4. ROSA: for each phase, could an exploited process write /dev/mem?
	inventory := []string{"open", "chown"}
	for _, phase := range report.Phases {
		creds := rosa.Creds{
			RUID: phase.RUID, EUID: phase.EUID, SUID: phase.SUID,
			RGID: phase.RGID, EGID: phase.EGID, SGID: phase.SGID,
		}
		q := attacks.Build(attacks.WriteDevMem, inventory, creds, phase.Privileges)
		res, err := q.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("phase %-12s for %5.1f%% of execution: write /dev/mem %s (%d states)\n",
			phase.Privileges, phase.Percent, res.Verdict, res.StatesExplored)
	}
	fmt.Println("\nCAP_CHOWN lets an attacker take ownership of any file; the daemon")
	fmt.Println("is exposed only for the startup instructions before the priv_remove.")
}
