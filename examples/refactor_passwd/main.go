// Refactor study: reproduce §VII-D for passwd — run PrivAnalyzer on the
// original privilege-annotated passwd and on the refactored version (early
// setuid to the special etc user, etc-owned shadow database), and show how
// the window of vulnerability shrinks.
//
// Run with: go run ./examples/refactor_passwd
package main

import (
	"fmt"
	"log"

	"privanalyzer/internal/core"
	"privanalyzer/internal/programs"
	"privanalyzer/internal/report"
)

func main() {
	before, err := programs.Passwd()
	if err != nil {
		log.Fatal(err)
	}
	after, err := programs.PasswdRefactored()
	if err != nil {
		log.Fatal(err)
	}

	aBefore, err := core.Analyze(before, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	aAfter, err := core.Analyze(after, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(report.EfficacyTable("passwd before refactoring (Table III rows)", []*core.Analysis{aBefore}))
	fmt.Println(report.EfficacyTable("passwd after refactoring (Table V rows)", []*core.Analysis{aAfter}))

	fmt.Println("window of opportunity (share of executed instructions during which")
	fmt.Println("each attack was possible):")
	fmt.Printf("%-40s %8s %8s\n", "", "before", "after")
	labels := [4]string{
		"1: read /dev/mem",
		"2: write /dev/mem",
		"3: bind privileged port",
		"4: SIGKILL the sshd server",
	}
	for i, label := range labels {
		fmt.Printf("%-40s %7.2f%% %7.2f%%\n", label,
			aBefore.VulnerableShare[i], aAfter.VulnerableShare[i])
	}

	fmt.Println("\nthe two §VII-E lessons applied here:")
	fmt.Println(" a) change credentials early: setresuid(998,998,-1) right after the")
	fmt.Println("    invoking user is known lets CAP_SETUID be removed immediately;")
	fmt.Println(" b) create special users for special files: the etc user owns")
	fmt.Println("    /etc/shadow, so the whole database update needs no privilege and")
	fmt.Println("    euid 998 cannot touch /dev/mem, which the mem user owns.")
	fmt.Printf("\nsource changes required (Table IV): passwd.c +%d/-%d, shadow library +%d/-%d\n",
		after.LoCChanged["passwd.c"][0], after.LoCChanged["passwd.c"][1],
		after.LoCChanged["shadow library code"][0], after.LoCChanged["shadow library code"][1])
}
