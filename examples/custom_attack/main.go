// Custom attack: author a new compromised-state query against the ROSA
// model checker directly, beyond the paper's four attacks of Table I.
//
// Scenario: a backup daemon may run chown, rename, and open. The attacker's
// goal is to steal the TLS private key /etc/ssl/server.key (owner root,
// mode rw-------) — either by opening it outright or by re-pointing the
// directory entry of a world-readable file at the key's inode. We ask ROSA
// which privilege profiles make that reachable.
//
// Run with: go run ./examples/custom_attack
package main

import (
	"fmt"
	"log"

	"privanalyzer/internal/caps"
	"privanalyzer/internal/rewrite"
	"privanalyzer/internal/rosa"
	"privanalyzer/internal/vkernel"
)

// Object IDs for the scenario.
const (
	daemonPID = 1
	sslDirID  = 2
	keyFileID = 3
	pubDirID  = 4
	pubFileID = 5
)

// buildQuery assembles the initial configuration for one privilege profile.
func buildQuery(privs caps.Set) *rosa.Query {
	return &rosa.Query{
		Objects: []*rewrite.Term{
			rosa.Process(daemonPID, rosa.UniformCreds(1000, 1000), nil, nil),
			// /etc/ssl/server.key: root-owned, owner-only access, with its
			// directory entry requiring search permission.
			rosa.DirEntry(sslDirID, "/etc/ssl", vkernel.MustMode("rwx------"), 0, 0, keyFileID),
			rosa.File(keyFileID, "/etc/ssl/server.key", vkernel.MustMode("rw-------"), 0, 0),
			// /srv/backup/manifest: world-readable, owned by the daemon's
			// user; its entry is writable by the daemon.
			rosa.DirEntry(pubDirID, "/srv/backup", vkernel.MustMode("rwxr-xr-x"), 1000, 1000, pubFileID),
			rosa.File(pubFileID, "/srv/backup/manifest", vkernel.MustMode("rw-r--r--"), 1000, 1000),
			rosa.User(0), rosa.User(1000),
			rosa.GroupObj(0), rosa.GroupObj(1000),
		},
		Messages: []*rewrite.Term{
			rosa.OpenMsg(daemonPID, rosa.Wild, rosa.OpenRead, privs),
			rosa.ChownMsg(daemonPID, rosa.Wild, rosa.Wild, rosa.Wild, privs),
			// rename can re-point the daemon's own directory entry at ANY
			// inode — including the key's.
			rosa.RenameMsg(daemonPID, pubDirID, keyFileID, privs),
		},
		// Compromised state: the key's object ID is in some process's read
		// set.
		Goal: rosa.GoalFileInReadSet(keyFileID),
	}
}

func main() {
	profiles := []struct {
		name  string
		privs caps.Set
	}{
		{"no privileges", caps.EmptySet},
		{"CAP_CHOWN", caps.NewSet(caps.CapChown)},
		{"CAP_DAC_READ_SEARCH", caps.NewSet(caps.CapDacReadSearch)},
		{"CAP_FOWNER", caps.NewSet(caps.CapFowner)},
	}
	fmt.Println("goal: get /etc/ssl/server.key (object 3) into the daemon's read set")
	fmt.Println()
	for _, p := range profiles {
		res, err := buildQuery(p.privs).Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s -> %s  (%d states, %s)\n", p.name, res.Verdict, res.StatesExplored, res.Elapsed)
		if res.Verdict == rosa.Vulnerable {
			fmt.Print(rewrite.FormatWitness(res.Witness))
		}
		fmt.Println()
	}
	fmt.Println("note the no-privilege case: rename alone re-points the daemon's own")
	fmt.Println("directory entry at the key — but opening through it still fails the")
	fmt.Println("file's DAC check, so the system stays safe; CAP_CHOWN changes that.")
}
