// Container audit: the paper's motivating deployment (§I) — Docker grants
// containers a default capability set and lets operators add or drop
// capabilities. This example audits several container capability profiles
// with ROSA: for a containerised service with a typical syscall footprint,
// which of the four modeled privilege-escalation attacks does each profile
// leave open?
//
// Run with: go run ./examples/container_audit
package main

import (
	"fmt"
	"log"

	"privanalyzer/internal/attacks"
	"privanalyzer/internal/caps"
	"privanalyzer/internal/rosa"
)

// dockerDefault is the subset of Docker's default container capability set
// that this model knows about.
func dockerDefault() caps.Set {
	return caps.NewSet(
		caps.CapChown, caps.CapDacOverride, caps.CapFowner, caps.CapFsetid,
		caps.CapKill, caps.CapSetgid, caps.CapSetuid, caps.CapSetpcap,
		caps.CapNetBindService, caps.CapNetRaw, caps.CapSysChroot,
		caps.CapMknod, caps.CapAuditWrite, caps.CapSetfcap,
	)
}

func main() {
	// The containerised service's syscall footprint: a network daemon that
	// also manages files and worker processes.
	inventory := []string{
		"open", "chown", "setuid", "setresuid", "setgid", "setresgid",
		"kill", "socket", "bind", "connect",
	}
	// The container's entrypoint runs as an unprivileged service user.
	creds := rosa.UniformCreds(1000, 1000)

	profiles := []struct {
		name  string
		privs caps.Set
	}{
		{"docker default", dockerDefault()},
		{"default minus CAP_SETUID/SETGID", dockerDefault().Drop(caps.CapSetuid).Drop(caps.CapSetgid)},
		{"default minus DAC/CHOWN/SETUID/SETGID/KILL", dockerDefault().
			Drop(caps.CapDacOverride).Drop(caps.CapChown).
			Drop(caps.CapSetuid).Drop(caps.CapSetgid).Drop(caps.CapKill)},
		{"--cap-drop ALL --cap-add NET_BIND_SERVICE", caps.NewSet(caps.CapNetBindService)},
		{"--cap-drop ALL", caps.EmptySet},
	}

	fmt.Println("attack legend (Table I):")
	for _, id := range attacks.All {
		fmt.Printf("  %d: %s\n", id, id.Description())
	}
	fmt.Println()
	fmt.Printf("%-45s %s\n", "capability profile", "1 2 3 4")
	for _, p := range profiles {
		var row string
		for _, id := range attacks.All {
			q := attacks.Build(id, inventory, creds, p.privs)
			res, err := q.Run()
			if err != nil {
				log.Fatal(err)
			}
			row += res.Verdict.String() + " "
		}
		fmt.Printf("%-45s %s\n", p.name, row)
	}

	fmt.Println("\nthe audit shows why \"drop what you don't need\" matters: the default")
	fmt.Println("profile leaves every modeled escalation open even for a non-root")
	fmt.Println("service user, while NET_BIND_SERVICE alone only concedes the port")
	fmt.Println("masquerade — and that is the one capability a web frontend needs.")
}
