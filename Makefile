# PrivAnalyzer reproduction — convenience targets.

GO ?= go

.PHONY: all build test test-short bench experiments tables fuzz clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./... 2>&1 | tee test_output.txt

test-short:
	$(GO) test -short ./...

# Quick full benchmark sweep (one iteration per cell); the default
# benchtime takes far longer across BenchmarkROSA's ~140 cells.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./... 2>&1 | tee bench_output.txt

# Run the whole evaluation and compare every cell against the paper.
experiments:
	$(GO) run ./cmd/privanalyzer -experiments -parallel

tables:
	$(GO) run ./cmd/privanalyzer -tables

# Short fuzzing passes over every parser.
fuzz:
	$(GO) test -fuzz=FuzzParse$$ -fuzztime=15s ./internal/ir/
	$(GO) test -fuzz=FuzzParseTerm -fuzztime=15s ./internal/rewrite/
	$(GO) test -fuzz=FuzzParseQuery -fuzztime=15s ./internal/rosa/
	$(GO) test -fuzz=FuzzParseSet -fuzztime=15s ./internal/caps/
	$(GO) test -fuzz=FuzzParseMode -fuzztime=15s ./internal/vkernel/

clean:
	$(GO) clean -testcache
	rm -rf internal/*/testdata/fuzz
