# PrivAnalyzer reproduction — convenience targets.

GO ?= go

.PHONY: all build test test-short test-race test-chaos test-chaos-server bench bench-json bench-baseline bench-baseline-update experiments tables serve fuzz clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) vet ./...
	$(GO) test ./... 2>&1 | tee test_output.txt

test-short:
	$(GO) test -short ./...

# Race-detector pass over the packages with concurrent code paths (the
# level-parallel search engine, its callers, the telemetry registry, and
# the server's slow-query journal / job pool).
test-race:
	$(GO) test -race ./internal/rewrite/ ./internal/rosa/ ./internal/core/ ./internal/telemetry/ ./internal/server/

# Fault-injection suites under the race detector: panic isolation,
# escalation transparency, checkpoint/resume equivalence, memory
# degradation, and the cmd-level signal/checkpoint plumbing (DESIGN.md §9).
test-chaos:
	$(GO) test -race -run 'Chaos|Fault|Checkpoint|Resume|Escalat|Degrad|Panic|Cancel|Signal|Shed|Latency|Compile' \
		./internal/rewrite/ ./internal/rosa/ ./internal/core/ ./internal/cmdutil/ ./cmd/rosa/

# Serving-layer chaos under the race detector: injected handler panics
# resolving to 500 envelopes, a stalled worker vs bounded drain, queue-full
# storms, admission/brownout shedding, deadline expiry in queue, client
# disconnects, the error-envelope golden, and the saturation storm with
# byte-identity of admitted verdicts (DESIGN.md §15).
test-chaos-server:
	$(GO) test -race -count=1 \
		-run 'TestChaos|TestDeadline|TestJobDeadline|TestClientDisconnect|TestBrownout|TestServeDrains|TestAdmission|TestRetryAfter|TestParseBrownout|TestClampEscalate|TestError|TestServerPlan' \
		./internal/server/ ./internal/faultinject/

# Quick full benchmark sweep (one iteration per cell); the default
# benchtime takes far longer across BenchmarkROSA's ~140 cells.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./... 2>&1 | tee bench_output.txt

# Machine-readable Figure 5-11 grid: states/sec and wall-clock per
# (program, phase, attack) query, for performance tracking across commits.
bench-json:
	$(GO) run ./cmd/privanalyzer -bench-json BENCH_search.json

# Perf-baseline regression harness: run the full grid with cost vectors and
# an environment stamp, then compare against the committed baseline.
# Wall-clock regressions warn; determinism drift (verdicts/state counts)
# fails. Refresh the baseline with bench-baseline-update after a deliberate
# performance change.
bench-baseline:
	$(GO) run ./cmd/privanalyzer -bench-json BENCH_grid.json -bench-compare BENCH_baseline.json

bench-baseline-update:
	$(GO) run ./cmd/privanalyzer -bench-json BENCH_baseline.json

# Run the whole evaluation and compare every cell against the paper.
experiments:
	$(GO) run ./cmd/privanalyzer -experiments -parallel

tables:
	$(GO) run ./cmd/privanalyzer -tables

# The long-lived analysis server (API.md): REST+JSON on 127.0.0.1:7177,
# per-program checkers held hot across requests.
serve:
	$(GO) run ./cmd/privanalyzerd

# Short fuzzing passes over every parser.
fuzz:
	$(GO) test -fuzz=FuzzParse$$ -fuzztime=15s ./internal/ir/
	$(GO) test -fuzz=FuzzParseTerm -fuzztime=15s ./internal/rewrite/
	$(GO) test -fuzz=FuzzParseQuery -fuzztime=15s ./internal/rosa/
	$(GO) test -fuzz=FuzzParseSet -fuzztime=15s ./internal/caps/
	$(GO) test -fuzz=FuzzParseMode -fuzztime=15s ./internal/vkernel/

clean:
	$(GO) clean -testcache
	rm -rf internal/*/testdata/fuzz
